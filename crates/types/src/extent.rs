//! Extent lists: normalized sets of disjoint byte ranges.
//!
//! An [`ExtentList`] models the file-space footprint of a non-contiguous
//! I/O request. It maintains the invariant that its ranges are **sorted,
//! non-empty, disjoint, and non-adjacent** (adjacent ranges are coalesced),
//! so two extent lists describing the same byte set are structurally equal.
//!
//! The set algebra here is the workhorse of the whole system:
//! * the MPI-I/O layer flattens derived datatypes into extent lists;
//! * the versioning backend commits one extent list per atomic write;
//! * the lock-based baseline computes covering ranges and conflicts;
//! * the conflict-detection ADIO driver intersects extent lists to decide
//!   whether locking is needed;
//! * the verifier subtracts and intersects them to attribute bytes.

use crate::range::ByteRange;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized (sorted, coalesced, disjoint) set of byte ranges.
///
/// ```
/// use atomio_types::{ByteRange, ExtentList};
///
/// // Construction normalizes: sorts, merges overlaps, coalesces
/// // adjacency.
/// let a = ExtentList::from_pairs([(10u64, 10u64), (0, 10), (30, 5)]);
/// assert_eq!(a.ranges(), &[ByteRange::new(0, 20), ByteRange::new(30, 5)]);
///
/// // Set algebra drives conflict detection and the verifier.
/// let b = ExtentList::from_pairs([(15u64, 20u64)]);
/// assert!(a.overlaps(&b));
/// assert_eq!(a.intersection(&b).total_len(), 5 + 5); // [15,20) and [30,35)
/// assert_eq!(a.subtract(&b).total_len(), 15);         // [0,15)
///
/// // The covering range is what a locking baseline must lock —
/// // including the gap it never touches.
/// assert_eq!(a.covering_range(), ByteRange::new(0, 35));
/// assert_eq!(a.gap_len(), 10);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ExtentList {
    ranges: Vec<ByteRange>,
}

impl ExtentList {
    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        Self { ranges: Vec::new() }
    }

    /// A set holding a single range (empty input yields the empty set).
    pub fn single(range: ByteRange) -> Self {
        let mut list = Self::new();
        list.insert(range);
        list
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted, empty) ranges.
    pub fn from_ranges<I: IntoIterator<Item = ByteRange>>(ranges: I) -> Self {
        let mut raw: Vec<ByteRange> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        raw.sort();
        let mut list = Self::new();
        for r in raw {
            match list.ranges.last_mut() {
                Some(last) if r.offset <= last.end() => {
                    // Overlapping or adjacent: extend the tail range.
                    if r.end() > last.end() {
                        *last = ByteRange::from_bounds(last.offset, r.end());
                    }
                }
                _ => list.ranges.push(r),
            }
        }
        list
    }

    /// Builds a set from `(offset, len)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        Self::from_ranges(pairs.into_iter().map(|(o, l)| ByteRange::new(o, l)))
    }

    /// The normalized ranges in ascending order.
    #[inline]
    pub fn ranges(&self) -> &[ByteRange] {
        &self.ranges
    }

    /// Number of disjoint ranges after normalization.
    #[inline]
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// True if no bytes are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of bytes covered.
    #[inline]
    pub fn total_len(&self) -> u64 {
        self.ranges.iter().map(|r| r.len).sum()
    }

    /// The smallest contiguous range covering every extent — the byte range
    /// a covering-lock baseline must lock (including unaccessed gaps).
    pub fn covering_range(&self) -> ByteRange {
        match (self.ranges.first(), self.ranges.last()) {
            (Some(first), Some(last)) => ByteRange::from_bounds(first.offset, last.end()),
            _ => ByteRange::empty(),
        }
    }

    /// Bytes inside the covering range but not covered by any extent —
    /// the "unnecessarily locked" bytes of the covering-lock baseline.
    pub fn gap_len(&self) -> u64 {
        self.covering_range().len - self.total_len()
    }

    /// True if `pos` is covered by some extent.
    pub fn contains(&self, pos: u64) -> bool {
        // Binary search on range offsets; candidate is the last range
        // starting at or before pos.
        match self.ranges.binary_search_by(|r| r.offset.cmp(&pos)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].contains(pos),
        }
    }

    /// Inserts one range, merging as needed. `O(n)` worst case.
    pub fn insert(&mut self, range: ByteRange) {
        if range.is_empty() {
            return;
        }
        // Find insertion window: all existing ranges that overlap or are
        // adjacent to `range` get merged into it.
        let start = self.ranges.partition_point(|r| r.end() < range.offset);
        let end = self.ranges.partition_point(|r| r.offset <= range.end());
        let mut merged = range;
        for r in &self.ranges[start..end] {
            merged = merged.hull(*r);
        }
        self.ranges.splice(start..end, std::iter::once(merged));
    }

    /// Set union.
    pub fn union(&self, other: &ExtentList) -> ExtentList {
        // Merge two sorted lists, coalescing as we go.
        let mut out = ExtentList::new();
        let (mut i, mut j) = (0, 0);
        let push = |out: &mut ExtentList, r: ByteRange| match out.ranges.last_mut() {
            Some(last) if r.offset <= last.end() => {
                if r.end() > last.end() {
                    *last = ByteRange::from_bounds(last.offset, r.end());
                }
            }
            _ => out.ranges.push(r),
        };
        while i < self.ranges.len() && j < other.ranges.len() {
            if self.ranges[i] <= other.ranges[j] {
                push(&mut out, self.ranges[i]);
                i += 1;
            } else {
                push(&mut out, other.ranges[j]);
                j += 1;
            }
        }
        for &r in &self.ranges[i..] {
            push(&mut out, r);
        }
        for &r in &other.ranges[j..] {
            push(&mut out, r);
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ExtentList) -> ExtentList {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            if let Some(cut) = self.ranges[i].intersect(other.ranges[j]) {
                out.push(cut);
            }
            // Advance whichever range ends first.
            if self.ranges[i].end() <= other.ranges[j].end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Pieces are already sorted, disjoint and non-adjacent because they
        // come from two normalized lists; build directly.
        ExtentList { ranges: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &ExtentList) -> ExtentList {
        let mut out = Vec::new();
        let mut j = 0;
        for &r in &self.ranges {
            let mut remaining = r;
            // Skip other-ranges entirely before `remaining`.
            while j < other.ranges.len() && other.ranges[j].end() <= remaining.offset {
                j += 1;
            }
            let mut k = j;
            loop {
                if remaining.is_empty() {
                    break;
                }
                match other.ranges.get(k) {
                    Some(&cut) if cut.offset < remaining.end() => {
                        if cut.offset > remaining.offset {
                            out.push(ByteRange::from_bounds(remaining.offset, cut.offset));
                        }
                        let new_start = cut.end().max(remaining.offset);
                        if new_start >= remaining.end() {
                            remaining = ByteRange::empty();
                        } else {
                            remaining = ByteRange::from_bounds(new_start, remaining.end());
                        }
                        k += 1;
                    }
                    _ => {
                        out.push(remaining);
                        break;
                    }
                }
            }
        }
        // Already normalized: sorted & disjoint, and no two pieces can be
        // adjacent unless the source was (source is normalized).
        ExtentList { ranges: out }
    }

    /// True if the two sets share at least one byte.
    pub fn overlaps(&self, other: &ExtentList) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            if self.ranges[i].overlaps(other.ranges[j]) {
                return true;
            }
            if self.ranges[i].end() <= other.ranges[j].end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// True if every byte of `other` is covered by `self`.
    pub fn contains_all(&self, other: &ExtentList) -> bool {
        other.subtract(self).is_empty()
    }

    /// Restricts the set to a window.
    pub fn clip(&self, window: ByteRange) -> ExtentList {
        self.intersection(&ExtentList::single(window))
    }

    /// Shifts every extent right by `delta`.
    pub fn shifted(&self, delta: u64) -> ExtentList {
        ExtentList {
            ranges: self.ranges.iter().map(|r| r.shifted(delta)).collect(),
        }
    }

    /// Iterates over `(file_range, buffer_offset)` pairs: the buffer offset
    /// is the number of payload bytes preceding each extent. This is how a
    /// packed client buffer maps onto a non-contiguous file footprint.
    pub fn with_buffer_offsets(&self) -> impl Iterator<Item = (ByteRange, u64)> + '_ {
        self.ranges.iter().scan(0u64, |acc, &r| {
            let off = *acc;
            *acc += r.len;
            Some((r, off))
        })
    }

    /// Splits the set into at most `n` contiguous subsets of roughly equal
    /// byte count, preserving order. Used by collective-I/O aggregation.
    pub fn partition(&self, n: usize) -> Vec<ExtentList> {
        if n == 0 || self.is_empty() {
            return Vec::new();
        }
        let total = self.total_len();
        let target = total.div_ceil(n as u64);
        let mut out = Vec::with_capacity(n);
        let mut current = Vec::new();
        let mut acc = 0u64;
        for &r in &self.ranges {
            let mut rest = r;
            while !rest.is_empty() {
                let room = target.saturating_sub(acc);
                if room == 0 {
                    out.push(ExtentList {
                        ranges: std::mem::take(&mut current),
                    });
                    acc = 0;
                    continue;
                }
                let take = rest.len.min(room);
                let (head, tail) = rest.split_at(rest.offset + take);
                current.push(head);
                acc += head.len;
                rest = tail;
            }
        }
        if !current.is_empty() {
            out.push(ExtentList { ranges: current });
        }
        out
    }
}

impl fmt::Debug for ExtentList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.ranges.iter()).finish()
    }
}

impl fmt::Display for ExtentList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ByteRange> for ExtentList {
    fn from_iter<I: IntoIterator<Item = ByteRange>>(iter: I) -> Self {
        Self::from_ranges(iter)
    }
}

impl<'a> IntoIterator for &'a ExtentList {
    type Item = &'a ByteRange;
    type IntoIter = std::slice::Iter<'a, ByteRange>;
    fn into_iter(self) -> Self::IntoIter {
        self.ranges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::from_bounds(s, e)
    }

    fn el(pairs: &[(u64, u64)]) -> ExtentList {
        ExtentList::from_ranges(pairs.iter().map(|&(s, e)| r(s, e)))
    }

    #[test]
    fn normalization_sorts_merges_coalesces() {
        let list = el(&[(10, 20), (0, 5), (4, 8), (20, 25), (30, 30)]);
        assert_eq!(list.ranges(), &[r(0, 8), r(10, 25)]);
        assert_eq!(list.range_count(), 2);
        assert_eq!(list.total_len(), 8 + 15);
    }

    #[test]
    fn equal_sets_are_structurally_equal() {
        let a = el(&[(0, 10), (10, 20)]);
        let b = el(&[(0, 20)]);
        let c = el(&[(0, 7), (3, 20)]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn covering_range_and_gaps() {
        let list = el(&[(10, 20), (40, 50)]);
        assert_eq!(list.covering_range(), r(10, 50));
        assert_eq!(list.gap_len(), 20);
        assert_eq!(ExtentList::new().covering_range(), ByteRange::empty());
        assert_eq!(el(&[(5, 9)]).gap_len(), 0);
    }

    #[test]
    fn contains_uses_binary_search() {
        let list = el(&[(10, 20), (40, 50), (70, 80)]);
        for p in [10, 19, 40, 49, 70, 79] {
            assert!(list.contains(p), "{p}");
        }
        for p in [0, 9, 20, 39, 50, 69, 80, 1000] {
            assert!(!list.contains(p), "{p}");
        }
    }

    #[test]
    fn insert_merges_window() {
        let mut list = el(&[(0, 5), (10, 15), (20, 25), (40, 45)]);
        list.insert(r(5, 22)); // touches first three
        assert_eq!(list.ranges(), &[r(0, 25), r(40, 45)]);
        list.insert(r(50, 60));
        assert_eq!(list.ranges(), &[r(0, 25), r(40, 45), r(50, 60)]);
        list.insert(ByteRange::empty());
        assert_eq!(list.range_count(), 3);
    }

    #[test]
    fn union_matches_from_ranges() {
        let a = el(&[(0, 10), (20, 30)]);
        let b = el(&[(5, 25), (40, 50)]);
        let u = a.union(&b);
        assert_eq!(u, el(&[(0, 30), (40, 50)]));
        // Union with empty is identity.
        assert_eq!(a.union(&ExtentList::new()), a);
        assert_eq!(ExtentList::new().union(&b), b);
    }

    #[test]
    fn intersection_cases() {
        let a = el(&[(0, 10), (20, 30), (40, 50)]);
        let b = el(&[(5, 25), (45, 60)]);
        assert_eq!(a.intersection(&b), el(&[(5, 10), (20, 25), (45, 50)]));
        assert!(a.intersection(&ExtentList::new()).is_empty());
        let disjoint = el(&[(10, 20), (30, 40)]);
        assert!(a.intersection(&disjoint).is_empty());
    }

    #[test]
    fn subtract_cases() {
        let a = el(&[(0, 10), (20, 30)]);
        assert_eq!(a.subtract(&el(&[(5, 25)])), el(&[(0, 5), (25, 30)]));
        assert_eq!(a.subtract(&a), ExtentList::new());
        assert_eq!(a.subtract(&ExtentList::new()), a);
        // Hole punch.
        assert_eq!(
            el(&[(0, 30)]).subtract(&el(&[(5, 10), (15, 20)])),
            el(&[(0, 5), (10, 15), (20, 30)])
        );
        // Subtrahend covers everything.
        assert_eq!(a.subtract(&el(&[(0, 100)])), ExtentList::new());
    }

    #[test]
    fn overlaps_and_containment() {
        let a = el(&[(0, 10), (20, 30)]);
        assert!(a.overlaps(&el(&[(9, 12)])));
        assert!(!a.overlaps(&el(&[(10, 20)])));
        assert!(a.contains_all(&el(&[(2, 5), (25, 28)])));
        assert!(!a.contains_all(&el(&[(2, 12)])));
        assert!(a.contains_all(&ExtentList::new()));
    }

    #[test]
    fn clip_window() {
        let a = el(&[(0, 10), (20, 30)]);
        assert_eq!(a.clip(r(5, 25)), el(&[(5, 10), (20, 25)]));
        assert!(a.clip(r(12, 18)).is_empty());
    }

    #[test]
    fn shifted_preserves_shape() {
        let a = el(&[(0, 10), (20, 30)]);
        assert_eq!(a.shifted(100), el(&[(100, 110), (120, 130)]));
    }

    #[test]
    fn buffer_offsets_are_prefix_sums() {
        let a = el(&[(10, 14), (20, 26), (40, 42)]);
        let got: Vec<_> = a.with_buffer_offsets().collect();
        assert_eq!(got, vec![(r(10, 14), 0), (r(20, 26), 4), (r(40, 42), 10)]);
    }

    #[test]
    fn partition_balances_bytes() {
        let a = el(&[(0, 100)]);
        let parts = a.partition(4);
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.total_len(), 25);
        }
        // Parts tile the original set.
        let mut acc = ExtentList::new();
        for p in &parts {
            assert!(acc.intersection(p).is_empty(), "parts must be disjoint");
            acc = acc.union(p);
        }
        assert_eq!(acc, a);
    }

    #[test]
    fn partition_non_contiguous() {
        let a = el(&[(0, 10), (20, 30), (40, 50)]);
        let parts = a.partition(2);
        assert!(parts.len() <= 2);
        let mut acc = ExtentList::new();
        for p in &parts {
            acc = acc.union(p);
        }
        assert_eq!(acc, a);
        assert_eq!(a.partition(0), Vec::<ExtentList>::new());
    }

    #[test]
    fn from_pairs_and_iterators() {
        let a = ExtentList::from_pairs([(0u64, 5u64), (10, 5)]);
        assert_eq!(a.ranges(), &[r(0, 5), r(10, 15)]);
        let b: ExtentList = a.into_iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn display_formats() {
        let a = el(&[(0, 5), (10, 15)]);
        assert_eq!(a.to_string(), "{[0, 5), [10, 15)}");
        assert_eq!(format!("{a:?}"), "[[0, 5), [10, 15)]");
    }
}
