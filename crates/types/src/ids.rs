//! Strongly-typed identifiers for the entities of the storage system.
//!
//! All ids are small `Copy` newtypes over integers so they are free to pass
//! around, hash fast (they feed hash-partitioned metadata stores), and keep
//! function signatures self-documenting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw integer id.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

id_newtype!(
    /// Identifies a BLOB (one shared file's backing object).
    BlobId,
    "blob-"
);
id_newtype!(
    /// Identifies an immutable data chunk stored on a data provider.
    ///
    /// Chunk ids are globally unique and never reused: versioning relies on
    /// data immutability, so an overwrite allocates a *new* chunk id rather
    /// than mutating an existing chunk.
    ChunkId,
    "chunk-"
);
id_newtype!(
    /// Identifies a data or metadata provider (a storage server).
    ProviderId,
    "prov-"
);
id_newtype!(
    /// Identifies a node of a copy-on-write metadata segment tree.
    NodeId,
    "mnode-"
);
id_newtype!(
    /// Identifies a client of the storage service (an MPI rank).
    ClientId,
    "client-"
);

/// A snapshot version of a BLOB.
///
/// Versions are dense and totally ordered: version `v` is the state of the
/// blob after the first `v` writes in publication order have been applied.
/// Version 0 is the empty initial snapshot created by `blob create`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct VersionId(pub u64);

impl VersionId {
    /// The initial (empty) snapshot of every blob.
    pub const INITIAL: VersionId = VersionId(0);

    /// Wraps a raw version number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw version number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The version published immediately before this one.
    ///
    /// Returns `None` for the initial version.
    #[inline]
    pub fn predecessor(self) -> Option<VersionId> {
        self.0.checked_sub(1).map(VersionId)
    }

    /// The version published immediately after this one.
    #[inline]
    pub fn successor(self) -> VersionId {
        VersionId(self.0 + 1)
    }

    /// True for the initial (empty) snapshot.
    #[inline]
    pub fn is_initial(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VersionId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// A process-wide monotonic id allocator.
///
/// Services that mint fresh [`ChunkId`]s or [`NodeId`]s share one of these;
/// ids are unique across all threads for the life of the process.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// Creates an allocator that starts at zero.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Creates an allocator that starts at `first`.
    pub const fn starting_at(first: u64) -> Self {
        Self {
            next: AtomicU64::new(first),
        }
    }

    /// Returns the next raw id. Never returns the same value twice.
    #[inline]
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a fresh chunk id.
    #[inline]
    pub fn next_chunk(&self) -> ChunkId {
        ChunkId(self.next_raw())
    }

    /// Returns a fresh metadata node id.
    #[inline]
    pub fn next_node(&self) -> NodeId {
        NodeId(self.next_raw())
    }

    /// Returns a fresh blob id.
    #[inline]
    pub fn next_blob(&self) -> BlobId {
        BlobId(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn version_ordering_is_publication_order() {
        let v1 = VersionId::new(1);
        let v2 = VersionId::new(2);
        assert!(v1 < v2);
        assert_eq!(v1.successor(), v2);
        assert_eq!(v2.predecessor(), Some(v1));
        assert_eq!(VersionId::INITIAL.predecessor(), None);
        assert!(VersionId::INITIAL.is_initial());
        assert!(!v1.is_initial());
    }

    #[test]
    fn id_display_includes_prefix() {
        assert_eq!(BlobId::new(7).to_string(), "blob-7");
        assert_eq!(ChunkId::new(3).to_string(), "chunk-3");
        assert_eq!(VersionId::new(9).to_string(), "v9");
        assert_eq!(format!("{:?}", NodeId::new(4)), "mnode-4");
    }

    #[test]
    fn id_roundtrips_raw() {
        let id = ProviderId::from(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(ProviderId::new(42), id);
    }

    #[test]
    fn allocator_is_monotonic() {
        let alloc = IdAllocator::new();
        let a = alloc.next_raw();
        let b = alloc.next_raw();
        let c = alloc.next_raw();
        assert!(a < b && b < c);
    }

    #[test]
    fn allocator_starting_at_offsets_ids() {
        let alloc = IdAllocator::starting_at(100);
        assert_eq!(alloc.next_raw(), 100);
        assert_eq!(alloc.next_chunk(), ChunkId::new(101));
    }

    #[test]
    fn allocator_unique_across_threads() {
        let alloc = Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
