//! Chunk geometry: how blob byte space maps onto fixed-size striped chunks.
//!
//! The versioning backend stripes every blob into fixed-size chunks that
//! are distributed over data providers (the paper's *data striping*
//! principle). [`ChunkGeometry`] is the pure arithmetic of that mapping:
//! which chunk indices a byte range touches, and the chunk-relative
//! sub-ranges involved.

use crate::extent::ExtentList;
use crate::ids::{BlobId, ChunkId, VersionId};
use crate::range::ByteRange;
use serde::{Deserialize, Serialize};

/// Fixed-size striping geometry of a blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkGeometry {
    chunk_size: u64,
}

impl ChunkGeometry {
    /// Creates a geometry with the given chunk size in bytes.
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self { chunk_size }
    }

    /// Chunk size in bytes.
    #[inline]
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Index of the chunk containing byte `pos`.
    #[inline]
    pub fn chunk_index(&self, pos: u64) -> u64 {
        pos / self.chunk_size
    }

    /// Blob-absolute byte range covered by chunk `index`.
    #[inline]
    pub fn chunk_range(&self, index: u64) -> ByteRange {
        ByteRange::new(index * self.chunk_size, self.chunk_size)
    }

    /// Number of chunks needed to cover `len` bytes.
    #[inline]
    pub fn chunks_for_len(&self, len: u64) -> u64 {
        len.div_ceil(self.chunk_size)
    }

    /// Splits a blob-absolute range into per-chunk spans, in ascending
    /// order. Each span records the chunk index, the blob-absolute
    /// sub-range, and the chunk-relative sub-range.
    pub fn split_range(&self, range: ByteRange) -> Vec<ChunkSpan> {
        if range.is_empty() {
            return Vec::new();
        }
        let first = self.chunk_index(range.offset);
        let last = self.chunk_index(range.end() - 1);
        let mut spans = Vec::with_capacity((last - first + 1) as usize);
        for index in first..=last {
            let chunk = self.chunk_range(index);
            let abs = range
                .intersect(chunk)
                .expect("chunk in [first,last] must intersect range");
            spans.push(ChunkSpan {
                index,
                absolute: abs,
                relative: abs.relative_to(chunk),
            });
        }
        spans
    }

    /// Splits every extent of a list into per-chunk spans, in file order.
    pub fn split_extents(&self, extents: &ExtentList) -> Vec<ChunkSpan> {
        let mut out = Vec::new();
        for &r in extents {
            out.extend(self.split_range(r));
        }
        out
    }

    /// The set of distinct chunk indices an extent list touches.
    pub fn touched_chunks(&self, extents: &ExtentList) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for &r in extents {
            if r.is_empty() {
                continue;
            }
            let first = self.chunk_index(r.offset);
            let last = self.chunk_index(r.end() - 1);
            for i in first..=last {
                if out.last() != Some(&i) {
                    out.push(i);
                }
            }
        }
        out.dedup();
        out
    }
}

/// The part of a byte range that falls inside a single chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSpan {
    /// Index of the chunk within the blob.
    pub index: u64,
    /// Blob-absolute byte range of this span.
    pub absolute: ByteRange,
    /// The same span in chunk-relative coordinates.
    pub relative: ByteRange,
}

/// Globally unique key of one stored chunk instance.
///
/// Because data is immutable, a `(blob, version, index)` triple written by
/// one writer is never overwritten; the `chunk` id is the provider-level
/// storage handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkKey {
    /// Owning blob.
    pub blob: BlobId,
    /// Version whose write created the chunk.
    pub version: VersionId,
    /// Chunk index within the blob.
    pub index: u64,
    /// Provider-level storage handle.
    pub chunk: ChunkId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> ChunkGeometry {
        ChunkGeometry::new(100)
    }

    #[test]
    fn index_and_range_roundtrip() {
        let g = geo();
        assert_eq!(g.chunk_index(0), 0);
        assert_eq!(g.chunk_index(99), 0);
        assert_eq!(g.chunk_index(100), 1);
        assert_eq!(g.chunk_range(2), ByteRange::new(200, 100));
        assert_eq!(g.chunks_for_len(0), 0);
        assert_eq!(g.chunks_for_len(1), 1);
        assert_eq!(g.chunks_for_len(100), 1);
        assert_eq!(g.chunks_for_len(101), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_rejected() {
        let _ = ChunkGeometry::new(0);
    }

    #[test]
    fn split_range_within_one_chunk() {
        let g = geo();
        let spans = g.split_range(ByteRange::new(110, 50));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].index, 1);
        assert_eq!(spans[0].absolute, ByteRange::new(110, 50));
        assert_eq!(spans[0].relative, ByteRange::new(10, 50));
    }

    #[test]
    fn split_range_across_chunks() {
        let g = geo();
        let spans = g.split_range(ByteRange::new(50, 200)); // [50, 250)
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans
                .iter()
                .map(|s| (s.index, s.absolute, s.relative))
                .collect::<Vec<_>>(),
            vec![
                (0, ByteRange::new(50, 50), ByteRange::new(50, 50)),
                (1, ByteRange::new(100, 100), ByteRange::new(0, 100)),
                (2, ByteRange::new(200, 50), ByteRange::new(0, 50)),
            ]
        );
        // Spans tile the input exactly.
        let total: u64 = spans.iter().map(|s| s.absolute.len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn split_range_chunk_aligned() {
        let g = geo();
        let spans = g.split_range(ByteRange::new(100, 100));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].relative, ByteRange::new(0, 100));
        assert!(g.split_range(ByteRange::empty()).is_empty());
    }

    #[test]
    fn split_extents_flattens_in_order() {
        let g = geo();
        let ext = ExtentList::from_pairs([(50u64, 100u64), (250, 10)]);
        let spans = g.split_extents(&ext);
        assert_eq!(
            spans.iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn touched_chunks_dedups() {
        let g = geo();
        let ext = ExtentList::from_pairs([(0u64, 50u64), (60, 30), (150, 100)]);
        assert_eq!(g.touched_chunks(&ext), vec![0, 1, 2]);
        assert!(g.touched_chunks(&ExtentList::new()).is_empty());
    }
}
