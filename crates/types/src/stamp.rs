//! Writer stamps: position-dependent payload patterns that let the
//! atomicity verifier attribute every byte of a final file state to the
//! write operation that produced it.
//!
//! Each write operation is tagged with a [`WriteStamp`] `(writer, seq)`.
//! The byte stored at absolute file offset `p` by that operation is a
//! pseudo-random function of `(writer, seq, p)`. After a concurrent run,
//! the verifier recomputes the expected byte for every candidate operation
//! covering `p` and attributes the byte to the (with overwhelming
//! probability unique) matching candidate. MPI atomicity then reduces to a
//! serializability check over the attribution — see
//! `atomio-workloads::verify`.

use crate::extent::ExtentList;
use crate::ids::ClientId;
use serde::{Deserialize, Serialize};

/// Identity of one write operation for verification purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WriteStamp {
    /// The writing client (MPI rank).
    pub writer: ClientId,
    /// Per-writer operation sequence number.
    pub seq: u64,
}

impl WriteStamp {
    /// Creates a stamp for `writer`'s `seq`-th operation.
    pub const fn new(writer: ClientId, seq: u64) -> Self {
        Self { writer, seq }
    }

    /// The byte this operation stores at absolute file offset `p`.
    #[inline]
    pub fn byte_at(self, p: u64) -> u8 {
        let key = self
            .writer
            .raw()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        (mix64(key ^ p) & 0xFF) as u8
    }

    /// Fills `buf` with the expected bytes for the absolute range
    /// `[start, start + buf.len())`.
    pub fn fill_range(self, start: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.byte_at(start + i as u64);
        }
    }

    /// Builds the packed payload buffer for a non-contiguous write over
    /// `extents`: extents in file order, each filled with this stamp's
    /// position-dependent bytes.
    pub fn payload_for(self, extents: &ExtentList) -> Vec<u8> {
        let mut buf = vec![0u8; extents.total_len() as usize];
        for (range, buf_off) in extents.with_buffer_offsets() {
            let slice = &mut buf[buf_off as usize..(buf_off + range.len) as usize];
            self.fill_range(range.offset, slice);
        }
        buf
    }

    /// True if `data` matches this stamp over the absolute range starting
    /// at `start`.
    pub fn matches(self, start: u64, data: &[u8]) -> bool {
        data.iter()
            .enumerate()
            .all(|(i, &b)| b == self.byte_at(start + i as u64))
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
///
/// Used for stamps and for deterministic hash-partitioning of metadata
/// nodes onto metadata providers.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::ByteRange;

    #[test]
    fn byte_at_is_deterministic() {
        let s = WriteStamp::new(ClientId::new(3), 7);
        assert_eq!(s.byte_at(100), s.byte_at(100));
    }

    #[test]
    fn different_stamps_differ_somewhere() {
        let a = WriteStamp::new(ClientId::new(1), 0);
        let b = WriteStamp::new(ClientId::new(2), 0);
        let c = WriteStamp::new(ClientId::new(1), 1);
        let differs =
            |x: WriteStamp, y: WriteStamp| (0..64u64).any(|p| x.byte_at(p) != y.byte_at(p));
        assert!(differs(a, b));
        assert!(differs(a, c));
        assert!(differs(b, c));
    }

    #[test]
    fn stamp_depends_on_position() {
        let s = WriteStamp::new(ClientId::new(5), 2);
        // Not all positions map to the same byte.
        let first = s.byte_at(0);
        assert!((1..256u64).any(|p| s.byte_at(p) != first));
    }

    #[test]
    fn payload_maps_buffer_to_extents() {
        let s = WriteStamp::new(ClientId::new(9), 1);
        let ext = ExtentList::from_pairs([(10u64, 4u64), (100, 3)]);
        let payload = s.payload_for(&ext);
        assert_eq!(payload.len(), 7);
        for i in 0..4u64 {
            assert_eq!(payload[i as usize], s.byte_at(10 + i));
        }
        for i in 0..3u64 {
            assert_eq!(payload[4 + i as usize], s.byte_at(100 + i));
        }
    }

    #[test]
    fn matches_detects_corruption() {
        let s = WriteStamp::new(ClientId::new(4), 0);
        let mut buf = vec![0u8; 32];
        s.fill_range(50, &mut buf);
        assert!(s.matches(50, &buf));
        buf[10] ^= 0xFF;
        assert!(!s.matches(50, &buf));
        // Matching against the wrong offset fails (position-dependence).
        let mut buf2 = vec![0u8; 32];
        s.fill_range(50, &mut buf2);
        assert!(!s.matches(51, &buf2));
    }

    #[test]
    fn fill_range_consistent_with_payload() {
        let s = WriteStamp::new(ClientId::new(8), 3);
        let r = ByteRange::new(200, 16);
        let ext = ExtentList::single(r);
        let payload = s.payload_for(&ext);
        let mut direct = vec![0u8; 16];
        s.fill_range(200, &mut direct);
        assert_eq!(payload, direct);
    }

    #[test]
    fn mix64_is_not_identity_and_spreads() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        // Avalanche smoke test: flipping one input bit flips many output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        assert!((a ^ b).count_ones() > 10);
    }
}
