//! Backend selection: the typed configuration that decides whether a
//! deployment's state lives in RAM or on disk.
//!
//! Every storage role (data providers, metadata shards, the version
//! manager's publish log) consumes the same [`BackendConfig`], so Memory
//! vs Disk is one uniformly-plumbed choice instead of a constructor
//! scattered across crates: `StoreConfig::with_backend` selects it for
//! in-process deployments, and the server binaries select it with
//! `--data-dir DIR --fsync POLICY`.

use std::fmt;
use std::path::{Path, PathBuf};

/// When a durable backend calls `fsync` on its append-only logs — the
/// knob trading barrier-ack latency against the durability window (how
/// many acknowledged publishes a crash can lose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Sync after every publish/append: zero durability window, one
    /// `fsync` on every commit's critical path.
    #[default]
    PerPublish,
    /// Group commit: sync once every `n` appends. A crash can lose up to
    /// `n - 1` acknowledged records.
    Group(u32),
    /// Never sync on the commit path; only an explicit flush (or the OS
    /// page cache on its own schedule) makes records durable. The whole
    /// unsynced tail is the durability window.
    Deferred,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `per-publish`, `group:N`, or `deferred`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "per-publish" => Ok(FsyncPolicy::PerPublish),
            "deferred" => Ok(FsyncPolicy::Deferred),
            _ => match s.strip_prefix("group:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n > 0 => Ok(FsyncPolicy::Group(n)),
                    _ => Err(format!("bad group size in fsync policy: {s}")),
                },
                None => Err(format!(
                    "unknown fsync policy {s} (expected per-publish, group:N, or deferred)"
                )),
            },
        }
    }

    /// True when a log that has `unsynced` appended-but-unsynced records
    /// must sync now.
    pub fn due(&self, unsynced: u32) -> bool {
        match self {
            FsyncPolicy::PerPublish => unsynced >= 1,
            FsyncPolicy::Group(n) => unsynced >= *n,
            FsyncPolicy::Deferred => false,
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::PerPublish => write!(f, "per-publish"),
            FsyncPolicy::Group(n) => write!(f, "group:{n}"),
            FsyncPolicy::Deferred => write!(f, "deferred"),
        }
    }
}

/// Which storage backend a deployment's stateful roles run on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendConfig {
    /// `HashMap`-backed RAM: the simulation default. Fast, deterministic,
    /// and gone on restart.
    #[default]
    Memory,
    /// Slot-sharded append-only files under `dir`, recovered by scan on
    /// open. Each role carves its own subdirectory (see
    /// [`BackendConfig::subdir`]), so one `--data-dir` serves a whole
    /// co-located deployment without collisions.
    Disk {
        /// Root directory of the backend's state.
        dir: PathBuf,
        /// When append-only logs fsync.
        fsync: FsyncPolicy,
    },
}

impl BackendConfig {
    /// A disk backend rooted at `dir` with the default
    /// [`FsyncPolicy::PerPublish`].
    pub fn disk(dir: impl Into<PathBuf>) -> Self {
        BackendConfig::Disk {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
        }
    }

    /// Replaces the fsync policy (no-op on [`BackendConfig::Memory`]).
    pub fn with_fsync(self, policy: FsyncPolicy) -> Self {
        match self {
            BackendConfig::Memory => BackendConfig::Memory,
            BackendConfig::Disk { dir, .. } => BackendConfig::Disk { dir, fsync: policy },
        }
    }

    /// True for the disk backend.
    pub fn is_disk(&self) -> bool {
        matches!(self, BackendConfig::Disk { .. })
    }

    /// The backend re-rooted at `dir/name` (identity for Memory): how a
    /// multi-role deployment carves per-role state out of one data dir.
    pub fn subdir(&self, name: &str) -> BackendConfig {
        match self {
            BackendConfig::Memory => BackendConfig::Memory,
            BackendConfig::Disk { dir, fsync } => BackendConfig::Disk {
                dir: dir.join(name),
                fsync: *fsync,
            },
        }
    }

    /// The root directory of a disk backend.
    pub fn dir(&self) -> Option<&Path> {
        match self {
            BackendConfig::Memory => None,
            BackendConfig::Disk { dir, .. } => Some(dir),
        }
    }

    /// The fsync policy of a disk backend (the default for Memory, which
    /// has nothing to sync).
    pub fn fsync(&self) -> FsyncPolicy {
        match self {
            BackendConfig::Memory => FsyncPolicy::default(),
            BackendConfig::Disk { fsync, .. } => *fsync,
        }
    }
}

impl fmt::Display for BackendConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendConfig::Memory => write!(f, "memory"),
            BackendConfig::Disk { dir, fsync } => {
                write!(f, "disk:{} (fsync {fsync})", dir.display())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_its_own_display() {
        for policy in [
            FsyncPolicy::PerPublish,
            FsyncPolicy::Group(8),
            FsyncPolicy::Deferred,
        ] {
            assert_eq!(FsyncPolicy::parse(&policy.to_string()), Ok(policy));
        }
        assert!(FsyncPolicy::parse("group:0").is_err());
        assert!(FsyncPolicy::parse("group:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn fsync_due_matches_policy() {
        assert!(FsyncPolicy::PerPublish.due(1));
        assert!(!FsyncPolicy::Group(4).due(3));
        assert!(FsyncPolicy::Group(4).due(4));
        assert!(!FsyncPolicy::Deferred.due(1_000_000));
    }

    #[test]
    fn backend_subdir_rebases_disk_only() {
        assert_eq!(BackendConfig::Memory.subdir("meta"), BackendConfig::Memory);
        let disk = BackendConfig::disk("/data").with_fsync(FsyncPolicy::Group(2));
        match disk.subdir("meta") {
            BackendConfig::Disk { dir, fsync } => {
                assert_eq!(dir, PathBuf::from("/data/meta"));
                assert_eq!(fsync, FsyncPolicy::Group(2));
            }
            other => panic!("expected disk backend, got {other:?}"),
        }
        assert!(disk.is_disk());
        assert!(!BackendConfig::Memory.is_disk());
    }
}
