//! Record framing for the durable append-only logs.
//!
//! Every on-disk file of the disk backends — provider part files, meta
//! node logs, the version manager's publish log, and the per-directory
//! superblocks — is a sequence of self-delimiting records:
//!
//! ```text
//! magic:u32 | kind:u8 | body_len:u32 | checksum:u64 | body bytes
//! ```
//!
//! All integers are big-endian; the checksum covers `kind`, `body_len`,
//! and the body. A **torn tail** (the crash landed mid-append) shows up
//! as a record whose magic, length, or checksum does not hold:
//! [`scan_records`] stops there and reports the valid prefix length, so
//! recovery truncates the file back to the last whole record instead of
//! failing — the SPDK-BlobStore-style load path.

use crate::stamp::mix64;

/// Bytes of the fixed record header (`magic + kind + body_len + checksum`).
pub const RECORD_HEADER_BYTES: usize = 4 + 1 + 4 + 8;

/// Frame magic leading every record ("aior").
pub const RECORD_MAGIC: u32 = 0x6169_6F72;

/// Largest body any log record may carry (a corrupted length field must
/// not trigger a huge allocation during a recovery scan).
pub const MAX_RECORD_BODY: usize = 64 * 1024 * 1024;

/// Checksum of one record: the header fields and body folded through the
/// same multiply–xor mixer the chunk checksums use.
fn record_checksum(kind: u8, body: &[u8]) -> u64 {
    let mut acc = mix64(0x5EED_1065 ^ ((kind as u64) << 32) ^ body.len() as u64);
    let mut words = body.chunks_exact(8);
    for word in &mut words {
        acc = mix64(acc ^ u64::from_le_bytes(word.try_into().unwrap()));
    }
    let rest = words.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        acc = mix64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// Appends one framed record to `buf`.
pub fn append_record(buf: &mut Vec<u8>, kind: u8, body: &[u8]) {
    buf.extend_from_slice(&RECORD_MAGIC.to_be_bytes());
    buf.push(kind);
    buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&record_checksum(kind, body).to_be_bytes());
    buf.extend_from_slice(body);
}

/// Encodes one framed record as an owned buffer.
pub fn encode_record(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES + body.len());
    append_record(&mut buf, kind, body);
    buf
}

/// One record recovered by [`scan_records`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The record's kind tag.
    pub kind: u8,
    /// Absolute offset of the record's body within the scanned file.
    pub body_offset: u64,
    /// The record body.
    pub body: Vec<u8>,
}

/// Result of scanning one log file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordScan {
    /// Whole, checksum-valid records, in file order.
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix: truncate the file here when
    /// `truncated` is set.
    pub valid_len: u64,
    /// True when bytes past `valid_len` exist but do not form a whole
    /// valid record (a torn tail).
    pub truncated: bool,
}

/// Parses the one record starting at byte `pos`, returning it and the
/// offset just past it — `None` when the bytes there are torn or
/// corrupt. Logs that interleave out-of-frame payloads with their
/// records (the provider part files) drive this directly instead of
/// [`scan_records`].
pub fn read_record_at(bytes: &[u8], pos: usize) -> Option<(ScannedRecord, usize)> {
    let rest = bytes.get(pos..)?;
    if rest.len() < RECORD_HEADER_BYTES {
        return None;
    }
    let magic = u32::from_be_bytes(rest[0..4].try_into().unwrap());
    if magic != RECORD_MAGIC {
        return None;
    }
    let kind = rest[4];
    let body_len = u32::from_be_bytes(rest[5..9].try_into().unwrap()) as usize;
    let checksum = u64::from_be_bytes(rest[9..17].try_into().unwrap());
    if body_len > MAX_RECORD_BODY || rest.len() < RECORD_HEADER_BYTES + body_len {
        return None;
    }
    let body = &rest[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + body_len];
    if record_checksum(kind, body) != checksum {
        return None;
    }
    Some((
        ScannedRecord {
            kind,
            body_offset: (pos + RECORD_HEADER_BYTES) as u64,
            body: body.to_vec(),
        },
        pos + RECORD_HEADER_BYTES + body_len,
    ))
}

/// Walks `bytes` record by record, stopping at the first torn or
/// corrupt one. Never fails: damage is reported as a shorter
/// `valid_len` plus the `truncated` flag.
pub fn scan_records(bytes: &[u8]) -> RecordScan {
    let mut scan = RecordScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some((record, next)) = read_record_at(bytes, pos) else {
            scan.truncated = true;
            return scan;
        };
        scan.records.push(record);
        pos = next;
        scan.valid_len = pos as u64;
    }
    scan
}

/// Record kind of a superblock (the first record of every backend
/// directory's `superblock` file).
pub const SUPERBLOCK_KIND: u8 = 0;

/// Encodes a superblock body: on-disk format version, slot count, and a
/// role-specific tag (provider id, shard count, …) that guards against
/// pointing the wrong role — or the wrong instance — at a directory.
pub fn encode_superblock(format_version: u32, slot_count: u32, tag: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    body.extend_from_slice(&format_version.to_be_bytes());
    body.extend_from_slice(&slot_count.to_be_bytes());
    body.extend_from_slice(&tag.to_be_bytes());
    body
}

/// Decodes a superblock body encoded by [`encode_superblock`].
pub fn decode_superblock(body: &[u8]) -> Option<(u32, u32, u64)> {
    if body.len() != 16 {
        return None;
    }
    Some((
        u32::from_be_bytes(body[0..4].try_into().unwrap()),
        u32::from_be_bytes(body[4..8].try_into().unwrap()),
        u64::from_be_bytes(body[8..16].try_into().unwrap()),
    ))
}

/// On-disk format version every disk backend stamps into its superblock.
pub const FORMAT_VERSION: u32 = 1;

/// Reads (validating) or writes the superblock of a backend directory,
/// returning the directory's slot count. Shared by every disk backend —
/// the provider stamps its provider id into `tag`, the meta store its
/// shard count, the publish log its blob id — so pointing the wrong
/// role, or the wrong instance, at a directory fails loudly instead of
/// interleaving foreign logs.
///
/// # Errors
/// [`Error`](crate::Error)`::Internal` on I/O failure, a corrupt or
/// foreign superblock, or a format-version mismatch.
pub fn load_or_init_superblock(
    path: &std::path::Path,
    slot_count: u32,
    tag: u64,
    role: &str,
) -> crate::Result<u32> {
    use crate::Error;
    if path.exists() {
        let contents =
            std::fs::read(path).map_err(|e| Error::io(format!("{role} read superblock"), e))?;
        let scan = scan_records(&contents);
        let rec = scan
            .records
            .first()
            .filter(|r| r.kind == SUPERBLOCK_KIND && !scan.truncated)
            .ok_or_else(|| Error::Internal(format!("{role}: corrupt superblock")))?;
        let (format, slots, disk_tag) = decode_superblock(&rec.body)
            .ok_or_else(|| Error::Internal(format!("{role}: malformed superblock")))?;
        if format != FORMAT_VERSION {
            return Err(Error::Internal(format!(
                "{role}: on-disk format v{format}, this build speaks v{FORMAT_VERSION}"
            )));
        }
        if disk_tag != tag {
            return Err(Error::Internal(format!(
                "{role}: directory belongs to a different instance (tag {disk_tag}, expected {tag})"
            )));
        }
        Ok(slots)
    } else {
        use std::io::Write as _;
        let mut framed = Vec::new();
        append_record(
            &mut framed,
            SUPERBLOCK_KIND,
            &encode_superblock(FORMAT_VERSION, slot_count, tag),
        );
        let mut file = std::fs::File::create(path)
            .map_err(|e| Error::io(format!("{role} create superblock"), e))?;
        file.write_all(&framed)
            .and_then(|_| file.sync_data())
            .map_err(|e| Error::io(format!("{role} write superblock"), e))?;
        Ok(slot_count)
    }
}

/// A bounds-checked cursor over a record body, for the hand-rolled
/// fixed-layout codecs the disk backends use (the rpc value codec lives
/// above these crates, so they frame their own bytes).
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_be_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_be_bytes(bytes.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(bytes)
    }

    /// True when the whole buffer has been consumed — decoders check
    /// this so trailing garbage is rejected, not ignored.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"hello");
        append_record(&mut buf, 2, b"");
        append_record(&mut buf, 1, &[7u8; 1000]);
        let scan = scan_records(&buf);
        assert!(!scan.truncated);
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].kind, 1);
        assert_eq!(scan.records[0].body, b"hello");
        assert_eq!(scan.records[0].body_offset, RECORD_HEADER_BYTES as u64);
        assert_eq!(scan.records[1].body, b"");
        assert_eq!(scan.records[2].body, vec![7u8; 1000]);
    }

    #[test]
    fn torn_tail_is_reported_not_fatal() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"whole");
        let keep = buf.len() as u64;
        let mut torn = buf.clone();
        append_record(&mut torn, 1, b"torn record");
        torn.truncate(buf.len() + RECORD_HEADER_BYTES + 3); // mid-body
        let scan = scan_records(&torn);
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn flipped_body_byte_stops_the_scan() {
        let mut buf = Vec::new();
        append_record(&mut buf, 1, b"aaaa");
        append_record(&mut buf, 1, b"bbbb");
        let second_body = buf.len() - 4;
        buf[second_body] ^= 0xFF;
        let scan = scan_records(&buf);
        assert!(scan.truncated);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].body, b"aaaa");
    }

    #[test]
    fn garbage_magic_yields_empty_scan() {
        let scan = scan_records(&[
            0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn oversized_declared_body_is_a_torn_tail() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&RECORD_MAGIC.to_be_bytes());
        buf.push(1);
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&0u64.to_be_bytes());
        let scan = scan_records(&buf);
        assert!(scan.truncated);
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn superblock_roundtrip() {
        let body = encode_superblock(1, 8, 42);
        assert_eq!(decode_superblock(&body), Some((1, 8, 42)));
        assert_eq!(decode_superblock(&body[..15]), None);
    }

    #[test]
    fn byte_reader_bounds_checks() {
        let mut r = ByteReader::new(&[1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 3]);
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.u32(), Some(2));
        assert_eq!(r.u64(), Some(3));
        assert!(r.done());
        assert_eq!(r.u8(), None);
    }
}
