//! Per-blob version retention policy: how much history the reclamation
//! subsystem must preserve regardless of leases.
//!
//! Retention is one of the three inputs to the GC floor — the collector
//! reclaims strictly below `min(retention floor, oldest live lease, WAL
//! base version)` — and is the only one an operator sets directly:
//! `StoreConfig::with_retention` for in-process deployments, `--retention
//! POLICY` on the version-capable server binaries.

use crate::ids::VersionId;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// How many published snapshots of a blob must survive collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Keep every published version — reclamation is disabled and the
    /// GC floor never rises. The default: versioning semantics are
    /// exactly those of the pre-GC store.
    #[default]
    KeepAll,
    /// Keep the newest `n` published versions (`n >= 1`; the latest
    /// snapshot is always retained).
    KeepLast(u64),
    /// Keep every version strictly above `v`: versions `<= v` are
    /// eligible for collection once no lease or WAL entry pins them.
    KeepAbove(VersionId),
}

impl RetentionPolicy {
    /// Parses the CLI spelling: `keep-all`, `keep-last:N`, or
    /// `keep-above:V`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "keep-all" {
            return Ok(RetentionPolicy::KeepAll);
        }
        if let Some(n) = s.strip_prefix("keep-last:") {
            return match n.parse::<u64>() {
                Ok(n) if n > 0 => Ok(RetentionPolicy::KeepLast(n)),
                _ => Err(format!("bad count in retention policy: {s}")),
            };
        }
        if let Some(v) = s.strip_prefix("keep-above:") {
            return match v.parse::<u64>() {
                Ok(v) => Ok(RetentionPolicy::KeepAbove(VersionId::new(v))),
                _ => Err(format!("bad version in retention policy: {s}")),
            };
        }
        Err(format!(
            "unknown retention policy {s} (expected keep-all, keep-last:N, or keep-above:V)"
        ))
    }

    /// The retention floor for a blob whose newest published version is
    /// `latest`: every version `>= floor` must survive collection, so a
    /// collector may reclaim strictly below it. `KeepAll` (and an empty
    /// blob) floor at version 1 — nothing is collectible.
    pub fn floor(&self, latest: VersionId) -> VersionId {
        let latest = latest.raw();
        let floor = match self {
            RetentionPolicy::KeepAll => 1,
            RetentionPolicy::KeepLast(n) => latest.saturating_sub(n.saturating_sub(1)).max(1),
            RetentionPolicy::KeepAbove(v) => (v.raw() + 1).min(latest).max(1),
        };
        VersionId::new(floor)
    }
}

impl fmt::Display for RetentionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetentionPolicy::KeepAll => write!(f, "keep-all"),
            RetentionPolicy::KeepLast(n) => write!(f, "keep-last:{n}"),
            RetentionPolicy::KeepAbove(v) => write!(f, "keep-above:{}", v.raw()),
        }
    }
}

// ---------------------------------------------------------------------
// Wire encoding: retention crosses the RPC boundary (the client sets a
// blob's policy on the version service), so the enum gets the same
// tagged-object encoding by hand as `Error`.
// ---------------------------------------------------------------------

impl Serialize for RetentionPolicy {
    fn to_value(&self) -> Value {
        let tagged = |tag: &str, fields: Vec<(String, Value)>| {
            let mut obj = vec![("t".to_string(), Value::Str(tag.to_string()))];
            obj.extend(fields);
            Value::Object(obj)
        };
        match self {
            RetentionPolicy::KeepAll => tagged("KeepAll", vec![]),
            RetentionPolicy::KeepLast(n) => tagged("KeepLast", vec![("n".into(), n.to_value())]),
            RetentionPolicy::KeepAbove(v) => tagged("KeepAbove", vec![("v".into(), v.to_value())]),
        }
    }
}

impl Deserialize for RetentionPolicy {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let tag = match v.get("t") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(DeError::expected("tagged retention object", v)),
        };
        Ok(match tag {
            "KeepAll" => RetentionPolicy::KeepAll,
            "KeepLast" => RetentionPolicy::KeepLast(u64::from_value(v.get_or_null("n"))?),
            "KeepAbove" => RetentionPolicy::KeepAbove(VersionId::from_value(v.get_or_null("v"))?),
            other => return Err(DeError::new(format!("unknown retention tag {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_its_own_display() {
        for policy in [
            RetentionPolicy::KeepAll,
            RetentionPolicy::KeepLast(3),
            RetentionPolicy::KeepAbove(VersionId::new(7)),
        ] {
            assert_eq!(RetentionPolicy::parse(&policy.to_string()), Ok(policy));
        }
        assert!(RetentionPolicy::parse("keep-last:0").is_err());
        assert!(RetentionPolicy::parse("keep-last:x").is_err());
        assert!(RetentionPolicy::parse("keep-above:").is_err());
        assert!(RetentionPolicy::parse("keep-some").is_err());
    }

    #[test]
    fn floor_pins_the_latest_snapshot() {
        let latest = VersionId::new(10);
        assert_eq!(RetentionPolicy::KeepAll.floor(latest), VersionId::new(1));
        assert_eq!(
            RetentionPolicy::KeepLast(1).floor(latest),
            VersionId::new(10)
        );
        assert_eq!(
            RetentionPolicy::KeepLast(4).floor(latest),
            VersionId::new(7)
        );
        // More retention than history: floor clamps at 1.
        assert_eq!(
            RetentionPolicy::KeepLast(99).floor(latest),
            VersionId::new(1)
        );
        assert_eq!(
            RetentionPolicy::KeepAbove(VersionId::new(6)).floor(latest),
            VersionId::new(7)
        );
        // KeepAbove never floats past latest: the newest snapshot stays.
        assert_eq!(
            RetentionPolicy::KeepAbove(VersionId::new(42)).floor(latest),
            VersionId::new(10)
        );
        // Empty blob (latest = 0): nothing to collect, floor is 1.
        assert_eq!(
            RetentionPolicy::KeepLast(2).floor(VersionId::new(0)),
            VersionId::new(1)
        );
    }

    #[test]
    fn wire_roundtrip() {
        for policy in [
            RetentionPolicy::KeepAll,
            RetentionPolicy::KeepLast(8),
            RetentionPolicy::KeepAbove(VersionId::new(3)),
        ] {
            assert_eq!(
                RetentionPolicy::from_value(&policy.to_value()).unwrap(),
                policy
            );
        }
    }
}
