//! Contiguous byte ranges within a blob / file.
//!
//! [`ByteRange`] is a half-open interval `[offset, offset + len)`. It is the
//! unit of the extent algebra in [`crate::extent`], of lock requests in the
//! baseline file system's distributed lock manager, and of chunk-relative
//! addressing in the data providers.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A half-open byte interval `[offset, offset + len)` within a blob.
///
/// Empty ranges (`len == 0`) are permitted as values but are normalized
/// away by [`crate::ExtentList`]. `end()` is guaranteed not to overflow for
/// ranges constructed through [`ByteRange::new`], which panics on overflow
/// (offsets and lengths come from file geometry, so overflow is a logic
/// error, not an I/O error).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteRange {
    /// First byte covered by the range.
    pub offset: u64,
    /// Number of bytes covered.
    pub len: u64,
}

impl ByteRange {
    /// Creates a range from an offset and a length.
    ///
    /// # Panics
    /// Panics if `offset + len` overflows `u64`.
    #[inline]
    pub fn new(offset: u64, len: u64) -> Self {
        assert!(
            offset.checked_add(len).is_some(),
            "byte range [{offset}, +{len}) overflows u64"
        );
        Self { offset, len }
    }

    /// Creates a range from half-open bounds `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    #[inline]
    pub fn from_bounds(start: u64, end: u64) -> Self {
        assert!(end >= start, "byte range end {end} precedes start {start}");
        Self {
            offset: start,
            len: end - start,
        }
    }

    /// The empty range at offset zero.
    #[inline]
    pub const fn empty() -> Self {
        Self { offset: 0, len: 0 }
    }

    /// One-past-the-last byte covered by the range.
    #[inline]
    pub fn end(self) -> u64 {
        self.offset + self.len
    }

    /// True if the range covers no bytes.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// True if `pos` lies inside the range.
    #[inline]
    pub fn contains(self, pos: u64) -> bool {
        pos >= self.offset && pos < self.end()
    }

    /// True if `other` is entirely inside `self`.
    ///
    /// The empty range is contained in every range (including the empty
    /// range itself), matching set semantics.
    #[inline]
    pub fn contains_range(self, other: ByteRange) -> bool {
        other.is_empty() || (other.offset >= self.offset && other.end() <= self.end())
    }

    /// True if the two ranges share at least one byte.
    #[inline]
    pub fn overlaps(self, other: ByteRange) -> bool {
        self.offset < other.end()
            && other.offset < self.end()
            && !self.is_empty()
            && !other.is_empty()
    }

    /// True if the ranges are adjacent (share a boundary but no bytes).
    #[inline]
    pub fn is_adjacent(self, other: ByteRange) -> bool {
        self.end() == other.offset || other.end() == self.offset
    }

    /// The overlapping part of the two ranges, or `None` when disjoint.
    #[inline]
    pub fn intersect(self, other: ByteRange) -> Option<ByteRange> {
        let start = self.offset.max(other.offset);
        let end = self.end().min(other.end());
        if start < end {
            Some(ByteRange::from_bounds(start, end))
        } else {
            None
        }
    }

    /// The smallest range covering both inputs (including any gap between
    /// them). Empty inputs are ignored.
    #[inline]
    pub fn hull(self, other: ByteRange) -> ByteRange {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        ByteRange::from_bounds(self.offset.min(other.offset), self.end().max(other.end()))
    }

    /// Removes `other` from `self`, returning the (0, 1, or 2) leftover
    /// pieces in ascending order.
    pub fn subtract(self, other: ByteRange) -> SubtractResult {
        match self.intersect(other) {
            None => SubtractResult::One(self),
            Some(cut) => {
                let left = ByteRange::from_bounds(self.offset, cut.offset);
                let right = ByteRange::from_bounds(cut.end(), self.end());
                match (left.is_empty(), right.is_empty()) {
                    (true, true) => SubtractResult::Empty,
                    (false, true) => SubtractResult::One(left),
                    (true, false) => SubtractResult::One(right),
                    (false, false) => SubtractResult::Two(left, right),
                }
            }
        }
    }

    /// Splits the range at an absolute position, returning the part before
    /// `pos` and the part at/after `pos`. `pos` is clamped to the range.
    #[inline]
    pub fn split_at(self, pos: u64) -> (ByteRange, ByteRange) {
        let pos = pos.clamp(self.offset, self.end());
        (
            ByteRange::from_bounds(self.offset, pos),
            ByteRange::from_bounds(pos, self.end()),
        )
    }

    /// Shifts the range right by `delta` bytes.
    ///
    /// # Panics
    /// Panics on overflow.
    #[inline]
    pub fn shifted(self, delta: u64) -> ByteRange {
        ByteRange::new(self.offset + delta, self.len)
    }

    /// Reinterprets the range relative to a containing `base` range
    /// (e.g. blob-absolute to chunk-relative addressing).
    ///
    /// # Panics
    /// Panics if `self` is not contained in `base`.
    #[inline]
    pub fn relative_to(self, base: ByteRange) -> ByteRange {
        assert!(
            base.contains_range(self),
            "{self} is not contained in {base}"
        );
        ByteRange::new(self.offset - base.offset, self.len)
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

impl PartialOrd for ByteRange {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByteRange {
    /// Orders by offset, then by length — the order used by sorted extent
    /// lists.
    fn cmp(&self, other: &Self) -> Ordering {
        self.offset
            .cmp(&other.offset)
            .then(self.len.cmp(&other.len))
    }
}

impl From<std::ops::Range<u64>> for ByteRange {
    fn from(r: std::ops::Range<u64>) -> Self {
        ByteRange::from_bounds(r.start, r.end)
    }
}

/// Result of subtracting one range from another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubtractResult {
    /// The subtrahend covered the whole range.
    Empty,
    /// One piece survives.
    One(ByteRange),
    /// The subtrahend punched a hole: two pieces survive.
    Two(ByteRange, ByteRange),
}

impl SubtractResult {
    /// Iterates over the surviving pieces in ascending order.
    pub fn iter(self) -> impl Iterator<Item = ByteRange> {
        let (a, b) = match self {
            SubtractResult::Empty => (None, None),
            SubtractResult::One(x) => (Some(x), None),
            SubtractResult::Two(x, y) => (Some(x), Some(y)),
        };
        a.into_iter().chain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::from_bounds(s, e)
    }

    #[test]
    fn basic_accessors() {
        let x = ByteRange::new(10, 5);
        assert_eq!(x.end(), 15);
        assert!(!x.is_empty());
        assert!(x.contains(10));
        assert!(x.contains(14));
        assert!(!x.contains(15));
        assert!(!x.contains(9));
        assert!(ByteRange::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn new_rejects_overflow() {
        let _ = ByteRange::new(u64::MAX, 1);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn from_bounds_rejects_inverted() {
        let _ = ByteRange::from_bounds(5, 4);
    }

    #[test]
    fn overlap_rules() {
        assert!(r(0, 10).overlaps(r(5, 15)));
        assert!(r(5, 15).overlaps(r(0, 10)));
        assert!(!r(0, 10).overlaps(r(10, 20)), "adjacency is not overlap");
        assert!(!r(0, 10).overlaps(r(20, 30)));
        assert!(!r(0, 0).overlaps(r(0, 10)), "empty never overlaps");
        assert!(r(0, 10).is_adjacent(r(10, 20)));
        assert!(r(10, 20).is_adjacent(r(0, 10)));
        assert!(!r(0, 10).is_adjacent(r(11, 20)));
    }

    #[test]
    fn contains_range_rules() {
        assert!(r(0, 10).contains_range(r(2, 8)));
        assert!(r(0, 10).contains_range(r(0, 10)));
        assert!(!r(0, 10).contains_range(r(2, 11)));
        assert!(
            r(0, 10).contains_range(ByteRange::empty()),
            "empty set is subset"
        );
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(r(0, 10).intersect(r(5, 15)), Some(r(5, 10)));
        assert_eq!(r(0, 10).intersect(r(10, 20)), None);
        assert_eq!(r(0, 10).intersect(r(2, 8)), Some(r(2, 8)));
        assert_eq!(r(2, 8).intersect(r(0, 10)), Some(r(2, 8)));
        assert_eq!(r(0, 0).intersect(r(0, 10)), None);
    }

    #[test]
    fn hull_covers_gap() {
        assert_eq!(r(0, 5).hull(r(10, 20)), r(0, 20));
        assert_eq!(r(10, 20).hull(r(0, 5)), r(0, 20));
        assert_eq!(r(0, 5).hull(ByteRange::empty()), r(0, 5));
        assert_eq!(ByteRange::empty().hull(r(3, 4)), r(3, 4));
    }

    #[test]
    fn subtract_cases() {
        // disjoint: untouched
        assert_eq!(r(0, 10).subtract(r(20, 30)), SubtractResult::One(r(0, 10)));
        // covered: empty
        assert_eq!(r(5, 8).subtract(r(0, 10)), SubtractResult::Empty);
        // left trim
        assert_eq!(r(0, 10).subtract(r(0, 4)), SubtractResult::One(r(4, 10)));
        // right trim
        assert_eq!(r(0, 10).subtract(r(6, 12)), SubtractResult::One(r(0, 6)));
        // hole
        assert_eq!(
            r(0, 10).subtract(r(3, 7)),
            SubtractResult::Two(r(0, 3), r(7, 10))
        );
        let pieces: Vec<_> = r(0, 10).subtract(r(3, 7)).iter().collect();
        assert_eq!(pieces, vec![r(0, 3), r(7, 10)]);
    }

    #[test]
    fn split_at_clamps() {
        assert_eq!(r(0, 10).split_at(4), (r(0, 4), r(4, 10)));
        assert_eq!(r(5, 10).split_at(2), (r(5, 5), r(5, 10)));
        assert_eq!(r(5, 10).split_at(20), (r(5, 10), r(10, 10)));
    }

    #[test]
    fn relative_addressing() {
        let chunk = r(100, 200);
        let sub = r(150, 175);
        assert_eq!(sub.relative_to(chunk), r(50, 75));
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn relative_to_requires_containment() {
        let _ = r(0, 10).relative_to(r(5, 20));
    }

    #[test]
    fn ordering_by_offset_then_len() {
        let mut v = vec![r(5, 9), r(0, 3), r(5, 7), r(2, 4)];
        v.sort();
        assert_eq!(v, vec![r(0, 3), r(2, 4), r(5, 7), r(5, 9)]);
    }

    #[test]
    fn from_std_range() {
        let x: ByteRange = (3..9).into();
        assert_eq!(x, r(3, 9));
    }
}
