//! # atomio-types
//!
//! Foundation types shared by every crate in the `atomio` workspace: stable
//! identifiers, the byte-range / extent-list algebra that models
//! non-contiguous file accesses, chunk geometry helpers, error types, and
//! the writer-stamp encoding used by the atomicity verifier.
//!
//! The central abstraction is [`ExtentList`]: a sorted, coalesced set of
//! disjoint [`ByteRange`]s. An MPI-I/O request with a non-contiguous file
//! view flattens to an `ExtentList`; the versioning storage backend accepts
//! whole extent lists as single atomic operations, which is the paper's key
//! API extension (List-I/O-style vectored access, Ching et al. CLUSTER'02).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod chunk;
pub mod error;
pub mod extent;
pub mod ids;
pub mod range;
pub mod record;
pub mod retention;
pub mod stamp;
pub mod tempdir;

pub use backend::{BackendConfig, FsyncPolicy};
pub use chunk::{ChunkGeometry, ChunkKey, ChunkSpan};
pub use error::{Error, Result, TransportErrorKind};
pub use extent::ExtentList;
pub use ids::{BlobId, ChunkId, ClientId, NodeId, ProviderId, VersionId};
pub use range::ByteRange;
pub use retention::RetentionPolicy;
