//! Process-unique scratch directories for tests, benches, and the
//! durability experiments (the workspace vendors no `tempfile` crate).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root, removed (recursively) on
/// drop. Uniqueness comes from the pid, a process-wide counter, and the
/// wall clock, so concurrent test processes and leftover dirs from
/// killed runs cannot collide.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `TMPDIR/<prefix>-<pid>-<nanos>-<counter>`.
    ///
    /// # Panics
    /// Panics when the directory cannot be created — these are test
    /// scaffolds, and a broken temp root should fail loudly.
    pub fn new(prefix: &str) -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{nanos}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("atomio-test");
        let b = TempDir::new("atomio-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
    }
}
