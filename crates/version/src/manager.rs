//! Version manager implementation.

use crate::lease::{LeaseGrant, LeaseManager};
use atomio_meta::history::WriteSummary;
use atomio_meta::{NodeKey, TreeConfig, VersionHistory};
use atomio_simgrid::{CostModel, Participant, Resource};
use atomio_types::{Error, ExtentList, Result, RetentionPolicy, VersionId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A published snapshot: what a reader needs to run a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// The snapshot's version.
    pub version: VersionId,
    /// Root of its tree (`None` only for the initial empty snapshot).
    pub root: Option<NodeKey>,
    /// Blob size: one past the highest byte ever written up to this
    /// version.
    pub size: u64,
    /// Tree capacity of this version.
    pub capacity: u64,
}

/// A write ticket: permission to build and publish one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ticket {
    /// Version assigned to the write.
    pub version: VersionId,
    /// Tree capacity the write must build with.
    pub capacity: u64,
    /// Blob size after this write publishes.
    pub size: u64,
}

/// How tickets are issued — the E7 publication-pipeline ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TicketMode {
    /// BlobSeer-style: tickets are issued immediately; metadata builds of
    /// concurrent writers overlap, and only the publication flip is
    /// ordered.
    #[default]
    Pipelined,
    /// Naive: a ticket for version `v` is only issued once `v - 1` has
    /// published, serializing the whole metadata phase (data transfers
    /// still overlap). Used to quantify the value of pipelining.
    SerializedBuild,
}

enum TicketShape<'a> {
    Explicit(&'a ExtentList),
    Append(u64),
}

#[derive(Debug, Default)]
struct VmState {
    /// Next version to hand out.
    next: u64,
    /// Highest published version (dense prefix).
    published: u64,
    /// Builds finished out of order, waiting for their predecessors.
    pending: HashMap<u64, Option<NodeKey>>,
    /// Snapshot records, index `v - 1`.
    snapshots: Vec<SnapshotRecord>,
    /// Per-ticket sizes (index `v - 1`) so records can be completed at
    /// publication time.
    ticket_sizes: Vec<u64>,
    /// Live snapshot leases pinning historic versions against GC.
    leases: LeaseManager,
    /// How much history collection must preserve regardless of leases.
    retention: RetentionPolicy,
}

/// The version-manager service.
#[derive(Debug)]
pub struct VersionManager {
    history: Arc<VersionHistory>,
    config: TreeConfig,
    cost: CostModel,
    cpu: Resource,
    mode: TicketMode,
    state: Mutex<VmState>,
    /// Durable publish log — `None` for the in-memory deployment.
    log: Option<crate::log::PublishLog>,
}

impl VersionManager {
    /// Creates a version manager for one blob.
    pub fn new(
        history: Arc<VersionHistory>,
        config: TreeConfig,
        cost: CostModel,
        mode: TicketMode,
    ) -> Self {
        VersionManager {
            history,
            config,
            cost,
            cpu: Resource::new("version-manager/cpu"),
            mode,
            state: Mutex::new(VmState::default()),
            log: None,
        }
    }

    /// Creates a **durable** version manager whose publish decisions
    /// survive crashes: every snapshot entering the dense published
    /// prefix is appended to a log under `dir` (fsynced per `fsync`)
    /// before the publish call returns, and reopening the same `dir`
    /// replays the log — `history`, the published prefix, and every
    /// snapshot record come back exactly as logged. Versions granted but
    /// not published at the crash are rolled back and their numbers
    /// re-issued; they were never readable, so atomicity holds across
    /// the restart.
    ///
    /// `history` must be empty: recovery rebuilds it from the log.
    ///
    /// # Errors
    /// [`Error::Internal`] on I/O failure or a corrupt/foreign log
    /// directory.
    pub fn durable(
        dir: impl Into<std::path::PathBuf>,
        history: Arc<VersionHistory>,
        config: TreeConfig,
        cost: CostModel,
        mode: TicketMode,
        fsync: atomio_types::FsyncPolicy,
    ) -> Result<Self> {
        assert!(
            history.is_empty(),
            "durable recovery rebuilds the history from the log"
        );
        let (log, replay) = crate::log::PublishLog::open(dir, fsync)?;
        let mut st = VmState {
            retention: replay.retention.unwrap_or_default(),
            ..Default::default()
        };
        for grant in &replay.leases {
            st.leases
                .restore(grant.lease, grant.version, grant.expires_at_ms);
        }
        st.leases.reserve_ids(replay.max_lease_id);
        for rec in replay.publishes {
            history.append(WriteSummary {
                version: rec.version,
                extents: Arc::new(rec.extents.clone()),
                capacity: rec.capacity,
            });
            st.next += 1;
            st.published += 1;
            st.ticket_sizes.push(rec.size);
            st.snapshots.push(SnapshotRecord {
                version: rec.version,
                root: rec.root,
                size: rec.size,
                capacity: rec.capacity,
            });
        }
        Ok(VersionManager {
            history,
            config,
            cost,
            cpu: Resource::new("version-manager/cpu"),
            mode,
            state: Mutex::new(st),
            log: Some(log),
        })
    }

    /// The shared write-summary history.
    pub fn history(&self) -> &Arc<VersionHistory> {
        &self.history
    }

    /// Issues a write ticket for `extents` and records the write summary.
    ///
    /// In [`TicketMode::SerializedBuild`] this blocks (in virtual time)
    /// until every earlier version has published.
    ///
    /// **Grant-order invariant:** versions are granted densely, in the
    /// order ticket requests reach the manager. A caller that serializes
    /// its ticket calls therefore knows each grant in advance — the
    /// property `atomio-core`'s write-ahead-log drainer relies on to
    /// replay logged writes under their predicted versions.
    pub fn ticket(&self, p: &Participant, extents: &ExtentList) -> Result<Ticket> {
        if extents.is_empty() {
            return Err(Error::EmptyAccess);
        }
        self.ticket_inner(p, TicketShape::Explicit(extents))
            .map(|(t, _)| t)
    }

    /// Issues an **append** ticket for `len` bytes: the write's extents
    /// are `[tail, tail + len)` where `tail` is the blob size at ticket
    /// time — assigned atomically with the version number, so concurrent
    /// appenders receive disjoint, back-to-back regions (BlobSeer's
    /// APPEND primitive).
    ///
    /// Returns the ticket and the assigned extents.
    pub fn ticket_append(&self, p: &Participant, len: u64) -> Result<(Ticket, ExtentList)> {
        if len == 0 {
            return Err(Error::EmptyAccess);
        }
        self.ticket_inner(p, TicketShape::Append(len))
    }

    fn ticket_inner(
        &self,
        p: &Participant,
        shape: TicketShape<'_>,
    ) -> Result<(Ticket, ExtentList)> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        loop {
            if let Some(issued) = self.try_issue(&shape) {
                return Ok(issued);
            }
            p.sleep_ns(atomio_simgrid::clock::POLL_INTERVAL_NS);
        }
    }

    /// One lock-held ticket-issue attempt; `None` when the mode gates
    /// issuance behind publication progress.
    fn try_issue(&self, shape: &TicketShape<'_>) -> Option<(Ticket, ExtentList)> {
        let mut st = self.state.lock();
        let can_issue = match self.mode {
            TicketMode::Pipelined => true,
            TicketMode::SerializedBuild => st.next == st.published,
        };
        if !can_issue {
            return None;
        }
        let v = VersionId::new(st.next + 1);
        st.next += 1;
        let prev_size = st.ticket_sizes.last().copied().unwrap_or(0);
        let extents = match shape {
            TicketShape::Explicit(e) => (*e).clone(),
            TicketShape::Append(len) => {
                ExtentList::single(atomio_types::ByteRange::new(prev_size, *len))
            }
        };
        let prev_cap = self
            .history
            .capacity_of(v.predecessor().unwrap_or_default());
        let capacity = self
            .config
            .capacity_for(extents.covering_range().end())
            .max(prev_cap);
        let size = prev_size.max(extents.covering_range().end());
        st.ticket_sizes.push(size);
        self.history.append(WriteSummary {
            version: v,
            extents: Arc::new(extents.clone()),
            capacity,
        });
        Some((
            Ticket {
                version: v,
                capacity,
                size,
            },
            extents,
        ))
    }

    /// Reports the completed tree build of `ticket`'s version. The
    /// snapshot becomes visible once every predecessor has published;
    /// this call does not wait (use [`Self::wait_published`]).
    pub fn publish(&self, p: &Participant, ticket: Ticket, root: NodeKey) -> Result<()> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.publish_local(ticket, root)
    }

    /// [`Self::publish`] without simulated cost — the server-side half of
    /// a remote publish (the wire itself is the cost there).
    pub fn publish_local(&self, ticket: Ticket, root: NodeKey) -> Result<()> {
        let mut st = self.state.lock();
        let v = ticket.version.raw();
        if v == 0 || v > st.next {
            return Err(Error::Internal(format!(
                "publish of unissued version {}",
                ticket.version
            )));
        }
        if v <= st.published || st.pending.contains_key(&v) {
            return Err(Error::Internal(format!(
                "double publish of {}",
                ticket.version
            )));
        }
        st.pending.insert(v, Some(root));
        // Advance the dense published prefix. Each step appends to the
        // durable log *before* the snapshot becomes visible: a version is
        // never readable without a log record describing it.
        loop {
            let next = st.published + 1;
            let Some(root) = st.pending.remove(&next) else {
                break;
            };
            let v = VersionId::new(next);
            let record = SnapshotRecord {
                version: v,
                root,
                size: st.ticket_sizes[next as usize - 1],
                capacity: self.history.capacity_of(v),
            };
            if let Some(log) = &self.log {
                let extents = self
                    .history
                    .summary(v)
                    .map(|s| (*s.extents).clone())
                    .unwrap_or_default();
                log.append(&crate::log::PublishRecord {
                    version: v,
                    root,
                    size: record.size,
                    capacity: record.capacity,
                    extents,
                })?;
            }
            st.published += 1;
            st.snapshots.push(record);
        }
        Ok(())
    }

    /// Forces the publish log's outstanding appends to stable storage
    /// (no-op for in-memory managers).
    pub fn flush(&self) -> Result<()> {
        match &self.log {
            Some(log) => log.flush(),
            None => Ok(()),
        }
    }

    /// Fsync counters of the publish log, if this manager is durable.
    pub fn publish_log_stats(&self) -> Option<crate::log::LogStats> {
        self.log.as_ref().map(|l| l.stats())
    }

    /// True once `version` is visible to readers.
    pub fn is_published(&self, version: VersionId) -> bool {
        self.state.lock().published >= version.raw()
    }

    /// Blocks (in virtual time) until `version` is visible.
    pub fn wait_published(&self, p: &Participant, version: VersionId) {
        p.poll_until(|| self.is_published(version).then_some(()));
    }

    /// The latest published snapshot (the empty initial snapshot if no
    /// write has published yet).
    pub fn latest(&self, p: &Participant) -> SnapshotRecord {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.latest_local()
    }

    /// [`Self::latest`] without simulated cost (server-side half of a
    /// remote query).
    pub fn latest_local(&self) -> SnapshotRecord {
        let st = self.state.lock();
        st.snapshots.last().copied().unwrap_or(SnapshotRecord {
            version: VersionId::INITIAL,
            root: None,
            size: 0,
            capacity: 0,
        })
    }

    /// Looks up a specific published snapshot.
    pub fn snapshot(&self, p: &Participant, version: VersionId) -> Result<SnapshotRecord> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.snapshot_local(version)
    }

    /// [`Self::snapshot`] without simulated cost (server-side half of a
    /// remote query).
    pub fn snapshot_local(&self, version: VersionId) -> Result<SnapshotRecord> {
        if version.is_initial() {
            return Ok(SnapshotRecord {
                version,
                root: None,
                size: 0,
                capacity: 0,
            });
        }
        let st = self.state.lock();
        st.snapshots
            .get(version.raw() as usize - 1)
            .copied()
            .ok_or(Error::VersionNotFound {
                blob: atomio_types::BlobId::new(0),
                version,
            })
    }

    /// Participant-free ticket issue for network servers: spins on the
    /// wall clock instead of virtual time when [`TicketMode`] gates
    /// issuance. Returns the ticket, the assigned extents, and the
    /// history delta since the caller's `known` row count (so a remote
    /// client can mirror the write-summary history).
    pub fn ticket_local(
        &self,
        extents: &ExtentList,
        known: usize,
    ) -> Result<(Ticket, ExtentList, Vec<WriteSummary>)> {
        if extents.is_empty() {
            return Err(Error::EmptyAccess);
        }
        self.ticket_local_inner(TicketShape::Explicit(extents), known)
    }

    /// Participant-free append-ticket issue (see [`Self::ticket_local`]).
    pub fn ticket_append_local(
        &self,
        len: u64,
        known: usize,
    ) -> Result<(Ticket, ExtentList, Vec<WriteSummary>)> {
        if len == 0 {
            return Err(Error::EmptyAccess);
        }
        self.ticket_local_inner(TicketShape::Append(len), known)
    }

    fn ticket_local_inner(
        &self,
        shape: TicketShape<'_>,
        known: usize,
    ) -> Result<(Ticket, ExtentList, Vec<WriteSummary>)> {
        loop {
            if let Some((ticket, extents)) = self.try_issue(&shape) {
                let delta = self.history.summaries_since(known);
                return Ok((ticket, extents, delta));
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Publication statistics for the harness.
    pub fn stats(&self) -> PublicationStats {
        let st = self.state.lock();
        PublicationStats {
            issued: st.next,
            published: st.published,
            parked: st.pending.len(),
        }
    }

    /// Versions granted but not yet in the dense published prefix.
    /// A slot handoff drains a frozen blob by polling this to zero.
    pub fn pending_grants(&self) -> u64 {
        let st = self.state.lock();
        st.next - st.published
    }

    /// Exports the full published prefix plus the retention policy —
    /// everything a new shard needs to serve this blob verbatim after a
    /// slot handoff. Leases deliberately stay behind: they are pins held
    /// against *this* manager and lapse by TTL; readers re-acquire on
    /// the new owner.
    pub fn export_published(&self) -> (Vec<VersionExport>, RetentionPolicy) {
        let st = self.state.lock();
        let mut out = Vec::with_capacity(st.snapshots.len());
        for rec in &st.snapshots {
            let extents = self
                .history
                .summary(rec.version)
                .map(|s| (*s.extents).clone())
                .unwrap_or_default();
            out.push(VersionExport {
                version: rec.version,
                root: rec.root,
                size: rec.size,
                capacity: rec.capacity,
                extents,
            });
        }
        (out, st.retention)
    }

    /// Installs an exported published prefix verbatim (the receiving
    /// half of a slot handoff). Idempotent: records at or below the
    /// current published version are skipped, so replaying the same
    /// export twice is a no-op — a pure duplicate replay also leaves the
    /// retention policy untouched, so a late re-delivered handoff cannot
    /// clobber a policy clients set on this owner after the first
    /// import. Returns how many versions were applied.
    ///
    /// # Errors
    /// [`Error::Internal`] when the records leave a gap above the
    /// current prefix, or when this manager already handed out grants
    /// (imports only target a manager that has never ticketed — the
    /// coordinator installs the map on the new owner before any client
    /// can route writes at it).
    pub fn import_published(
        &self,
        records: &[VersionExport],
        retention: RetentionPolicy,
    ) -> Result<u64> {
        let mut st = self.state.lock();
        let prefix_was_empty = st.published == 0;
        let mut applied = 0u64;
        for rec in records {
            let v = rec.version.raw();
            if v <= st.published {
                continue; // double-replay idempotence
            }
            if st.next > st.published {
                return Err(Error::Internal(
                    "import into a manager with outstanding grants".into(),
                ));
            }
            if v != st.published + 1 {
                return Err(Error::Internal(format!(
                    "import gap: prefix ends at v{}, next record is {}",
                    st.published, rec.version
                )));
            }
            self.history.append(WriteSummary {
                version: rec.version,
                extents: Arc::new(rec.extents.clone()),
                capacity: rec.capacity,
            });
            if let Some(log) = &self.log {
                log.append(&crate::log::PublishRecord {
                    version: rec.version,
                    root: rec.root,
                    size: rec.size,
                    capacity: rec.capacity,
                    extents: rec.extents.clone(),
                })?;
            }
            st.next += 1;
            st.published += 1;
            st.ticket_sizes.push(rec.size);
            st.snapshots.push(SnapshotRecord {
                version: rec.version,
                root: rec.root,
                size: rec.size,
                capacity: rec.capacity,
            });
            applied += 1;
        }
        if applied > 0 || prefix_was_empty {
            st.retention = retention;
            if let Some(log) = &self.log {
                log.append_retention(retention)?;
            }
        }
        Ok(applied)
    }

    // -----------------------------------------------------------------
    // Reclamation surface: retention policy, snapshot leases, GC floor.
    // Participant-carrying wrappers charge one RPC round plus a
    // meta-op of manager CPU (same as every other client-facing call);
    // `_local` variants are the participant-free server-side halves,
    // taking `now_ms` from whichever clock the deployment runs on
    // (virtual in-process, wall clock on a network server).
    // -----------------------------------------------------------------

    /// Virtual-clock milliseconds for the in-process wrappers.
    fn vnow_ms(p: &Participant) -> u64 {
        p.now_ns() / 1_000_000
    }

    /// Sets the blob's retention policy (durably, when logged).
    pub fn set_retention(&self, p: &Participant, policy: RetentionPolicy) -> Result<()> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.set_retention_local(policy)
    }

    /// [`Self::set_retention`] without simulated cost.
    pub fn set_retention_local(&self, policy: RetentionPolicy) -> Result<()> {
        let mut st = self.state.lock();
        st.retention = policy;
        if let Some(log) = &self.log {
            log.append_retention(policy)?;
        }
        Ok(())
    }

    /// The blob's current retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.state.lock().retention
    }

    /// Grants a snapshot lease on a **published** version, pinning it
    /// (and everything below it) against collection for `ttl_ms`.
    pub fn lease_acquire(
        &self,
        p: &Participant,
        version: VersionId,
        ttl_ms: u64,
    ) -> Result<LeaseGrant> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.lease_acquire_local(version, ttl_ms, Self::vnow_ms(p))
    }

    /// [`Self::lease_acquire`] without simulated cost.
    ///
    /// # Errors
    /// [`Error::VersionNotFound`] when `version` is not a published
    /// (non-initial) snapshot — an unpublished or reclaimed version
    /// cannot be pinned.
    pub fn lease_acquire_local(
        &self,
        version: VersionId,
        ttl_ms: u64,
        now_ms: u64,
    ) -> Result<LeaseGrant> {
        let mut st = self.state.lock();
        if version.is_initial() || version.raw() > st.published {
            return Err(Error::VersionNotFound {
                blob: atomio_types::BlobId::new(0),
                version,
            });
        }
        let grant = st.leases.acquire(version, ttl_ms, now_ms);
        if let Some(log) = &self.log {
            log.append_lease(&grant)?;
        }
        Ok(grant)
    }

    /// Extends a live lease's TTL; refuses with a typed error once it
    /// has lapsed (the snapshot may already be reclaimed).
    pub fn lease_renew(&self, p: &Participant, lease: u64, ttl_ms: u64) -> Result<LeaseGrant> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.lease_renew_local(lease, ttl_ms, Self::vnow_ms(p))
    }

    /// [`Self::lease_renew`] without simulated cost.
    ///
    /// # Errors
    /// [`Error::LeaseExpired`] when the lease lapsed or never existed
    /// (`version` in the error is [`VersionId::INITIAL`] when the
    /// pinned snapshot is no longer known).
    pub fn lease_renew_local(&self, lease: u64, ttl_ms: u64, now_ms: u64) -> Result<LeaseGrant> {
        let mut st = self.state.lock();
        let grant = st
            .leases
            .renew(lease, ttl_ms, now_ms)
            .ok_or(Error::LeaseExpired {
                lease,
                version: VersionId::INITIAL,
            })?;
        if let Some(log) = &self.log {
            log.append_lease(&grant)?;
        }
        Ok(grant)
    }

    /// Releases a lease. Idempotent: releasing an expired or unknown
    /// lease succeeds — the pin is gone either way.
    pub fn lease_release(&self, p: &Participant, lease: u64) -> Result<()> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        self.lease_release_local(lease, Self::vnow_ms(p))
    }

    /// [`Self::lease_release`] without simulated cost.
    pub fn lease_release_local(&self, lease: u64, now_ms: u64) -> Result<()> {
        let mut st = self.state.lock();
        if st.leases.release(lease, now_ms).is_some() {
            if let Some(log) = &self.log {
                log.append_lease_release(lease)?;
            }
        }
        Ok(())
    }

    /// The reclamation floor as this manager sees it: the minimum of
    /// the retention floor (relative to the latest published snapshot)
    /// and the oldest live lease. The collector may retire versions
    /// strictly below it; the caller must still clamp by any WAL base
    /// version it holds — the manager cannot see host-side logs.
    pub fn gc_floor(&self, p: &Participant) -> Result<GcFloor> {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        Ok(self.gc_floor_local(Self::vnow_ms(p)))
    }

    /// [`Self::gc_floor`] without simulated cost.
    pub fn gc_floor_local(&self, now_ms: u64) -> GcFloor {
        let mut st = self.state.lock();
        let latest = VersionId::new(st.published);
        let mut floor = st.retention.floor(latest);
        if let Some(leased) = st.leases.oldest_live(now_ms) {
            floor = floor.min(leased);
        }
        GcFloor {
            floor,
            leases_active: st.leases.active(now_ms),
            lease_expirations: st.leases.expirations(),
        }
    }
}

/// The manager's contribution to the reclamation floor, plus the lease
/// gauges the GC stats block reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcFloor {
    /// Collection may retire versions strictly below this.
    pub floor: VersionId,
    /// Live leases at the time of the query.
    pub leases_active: u64,
    /// Leases that lapsed (TTL passed without release) since creation.
    pub lease_expirations: u64,
}

/// One published version in a slot-handoff export: the snapshot record
/// plus the write summary needed to rebuild the history row. Everything
/// a new owner installs verbatim via
/// [`VersionManager::import_published`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionExport {
    /// The exported version.
    pub version: VersionId,
    /// Tree root (`None` only for degenerate empty snapshots).
    pub root: Option<NodeKey>,
    /// Blob size at this version.
    pub size: u64,
    /// Tree capacity at this version.
    pub capacity: u64,
    /// The write's extent footprint (the history row).
    pub extents: ExtentList,
}

/// Counters describing the publication pipeline's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicationStats {
    /// Tickets issued so far.
    pub issued: u64,
    /// Snapshots visible so far.
    pub published: u64,
    /// Builds completed but waiting for a predecessor.
    pub parked: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::ByteRange;
    use std::time::Duration;

    fn vm(mode: TicketMode) -> VersionManager {
        VersionManager::new(
            Arc::new(VersionHistory::new()),
            TreeConfig::new(64),
            CostModel::zero(),
            mode,
        )
    }

    fn extents(pairs: &[(u64, u64)]) -> ExtentList {
        ExtentList::from_pairs(pairs.iter().copied())
    }

    fn root_for(t: Ticket) -> NodeKey {
        NodeKey::new(
            atomio_types::BlobId::new(0),
            t.version,
            ByteRange::new(0, t.capacity),
        )
    }

    #[test]
    fn tickets_are_dense_and_capacity_monotonic() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            let t1 = m.ticket(p, &extents(&[(0, 64)])).unwrap();
            let t2 = m.ticket(p, &extents(&[(0, 32)])).unwrap();
            let t3 = m.ticket(p, &extents(&[(500, 10)])).unwrap();
            assert_eq!(t1.version, VersionId::new(1));
            assert_eq!(t2.version, VersionId::new(2));
            assert_eq!(t3.version, VersionId::new(3));
            assert_eq!(t1.capacity, 64);
            assert_eq!(t2.capacity, 64, "capacity never shrinks");
            assert_eq!(t3.capacity, 512);
            assert_eq!(t1.size, 64);
            assert_eq!(t2.size, 64, "size never shrinks");
            assert_eq!(t3.size, 510);
        });
    }

    #[test]
    fn serialized_ticket_calls_are_granted_in_call_order() {
        // The WAL-drainer contract: a single caller issuing tickets one
        // at a time can predict every grant as `history.len() + k`,
        // regardless of ticket mode and of how far publication lags.
        for mode in [TicketMode::Pipelined, TicketMode::SerializedBuild] {
            let m = vm(mode);
            run_actors(1, |_, p| {
                let mut publish_backlog = Vec::new();
                for k in 1..=6u64 {
                    let base = m.history().len() as u64;
                    let t = m.ticket(p, &extents(&[(k * 8, 8)])).unwrap();
                    assert_eq!(
                        t.version,
                        VersionId::new(base.max(k - 1) + 1),
                        "grant order must equal call order ({mode:?})"
                    );
                    assert_eq!(t.version, VersionId::new(k));
                    publish_backlog.push(t);
                    // In SerializedBuild each version must publish before
                    // the next ticket is granted; in Pipelined the
                    // publication can lag arbitrarily without perturbing
                    // grant order.
                    if mode == TicketMode::SerializedBuild {
                        for t in publish_backlog.drain(..) {
                            m.publish(p, t, root_for(t)).unwrap();
                        }
                    }
                }
                for t in publish_backlog.drain(..) {
                    m.publish(p, t, root_for(t)).unwrap();
                }
            });
        }
    }

    #[test]
    fn empty_extents_rejected() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            assert_eq!(
                m.ticket(p, &ExtentList::new()).unwrap_err(),
                Error::EmptyAccess
            );
        });
    }

    #[test]
    fn out_of_order_publish_becomes_visible_in_order() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            let t1 = m.ticket(p, &extents(&[(0, 64)])).unwrap();
            let t2 = m.ticket(p, &extents(&[(64, 64)])).unwrap();
            let t3 = m.ticket(p, &extents(&[(128, 64)])).unwrap();
            // Publish 3 first: nothing visible.
            m.publish(p, t3, root_for(t3)).unwrap();
            assert!(!m.is_published(t3.version));
            assert_eq!(m.stats().parked, 1);
            // Publish 2: still nothing (1 missing).
            m.publish(p, t2, root_for(t2)).unwrap();
            assert!(!m.is_published(t2.version));
            // Publish 1: all three become visible at once.
            m.publish(p, t1, root_for(t1)).unwrap();
            assert!(m.is_published(t3.version));
            assert_eq!(m.stats().parked, 0);
            assert_eq!(m.latest(p).version, t3.version);
        });
    }

    #[test]
    fn double_publish_rejected() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            let t1 = m.ticket(p, &extents(&[(0, 64)])).unwrap();
            m.publish(p, t1, root_for(t1)).unwrap();
            assert!(matches!(
                m.publish(p, t1, root_for(t1)),
                Err(Error::Internal(_))
            ));
            // Unissued version also rejected.
            let bogus = Ticket {
                version: VersionId::new(9),
                capacity: 64,
                size: 64,
            };
            assert!(matches!(
                m.publish(p, bogus, root_for(bogus)),
                Err(Error::Internal(_))
            ));
        });
    }

    #[test]
    fn snapshot_lookup() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            let initial = m.snapshot(p, VersionId::INITIAL).unwrap();
            assert_eq!(initial.size, 0);
            assert!(initial.root.is_none());
            let t1 = m.ticket(p, &extents(&[(0, 100)])).unwrap();
            assert!(matches!(
                m.snapshot(p, t1.version),
                Err(Error::VersionNotFound { .. })
            ));
            m.publish(p, t1, root_for(t1)).unwrap();
            let snap = m.snapshot(p, t1.version).unwrap();
            assert_eq!(snap.size, 100);
            assert_eq!(snap.root, Some(root_for(t1)));
            assert_eq!(m.latest(p), snap);
        });
    }

    #[test]
    fn wait_published_unblocks_when_predecessors_land() {
        let m = Arc::new(vm(TicketMode::Pipelined));
        let tickets = Mutex::new(Vec::new());
        let (_, _) = run_actors(3, |i, p| {
            // Everyone takes a ticket "simultaneously".
            let t = m.ticket(p, &extents(&[(i as u64 * 64, 64)])).unwrap();
            tickets.lock().push(t.version);
            // Later tickets publish later in virtual time (reverse delay
            // would park them).
            p.sleep(Duration::from_micros(
                (3 - t.version.raw()) * 100, // v1 sleeps longest
            ));
            m.publish(p, t, root_for(t)).unwrap();
            m.wait_published(p, t.version);
            assert!(m.is_published(t.version));
        });
        assert_eq!(m.stats().published, 3);
    }

    #[test]
    fn append_tickets_are_disjoint_and_dense() {
        let m = Arc::new(vm(TicketMode::Pipelined));
        let (results, _) = run_actors(8, |_, p| {
            let (t, ext) = m.ticket_append(p, 100).unwrap();
            (t.version.raw(), ext.covering_range().offset)
        });
        let mut by_version: Vec<(u64, u64)> = results;
        by_version.sort_unstable();
        for (i, (v, off)) in by_version.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
            assert_eq!(*off, i as u64 * 100, "append regions must be back-to-back");
        }
    }

    #[test]
    fn append_after_explicit_write_starts_at_tail() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            let t = m.ticket(p, &extents(&[(0, 130)])).unwrap();
            m.publish(p, t, root_for(t)).unwrap();
            let (t2, ext) = m.ticket_append(p, 20).unwrap();
            assert_eq!(ext.covering_range().offset, 130);
            assert_eq!(t2.size, 150);
            assert!(matches!(m.ticket_append(p, 0), Err(Error::EmptyAccess)));
        });
    }

    #[test]
    fn concurrent_tickets_are_unique() {
        let m = Arc::new(vm(TicketMode::Pipelined));
        let (versions, _) = run_actors(16, |i, p| {
            m.ticket(p, &extents(&[(i as u64 * 64, 64)]))
                .unwrap()
                .version
                .raw()
        });
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn serialized_mode_orders_tickets_behind_publication() {
        let m = Arc::new(vm(TicketMode::SerializedBuild));
        // Each actor: take ticket, hold it for 1ms of "build", publish.
        // In serialized mode the whole (ticket..publish) sections cannot
        // overlap, so total virtual time ≥ 4ms.
        let (_, total) = run_actors(4, |i, p| {
            let t = m.ticket(p, &extents(&[(i as u64 * 64, 64)])).unwrap();
            p.sleep(Duration::from_millis(1));
            m.publish(p, t, root_for(t)).unwrap();
            m.wait_published(p, t.version);
        });
        assert!(total >= Duration::from_millis(4), "total {total:?}");
        assert_eq!(m.stats().published, 4);
    }

    fn durable_vm(dir: &std::path::Path, fsync: atomio_types::FsyncPolicy) -> VersionManager {
        VersionManager::durable(
            dir,
            Arc::new(VersionHistory::new()),
            TreeConfig::new(64),
            CostModel::zero(),
            TicketMode::Pipelined,
            fsync,
        )
        .unwrap()
    }

    #[test]
    fn durable_manager_recovers_published_prefix() {
        let tmp = atomio_types::tempdir::TempDir::new("atomio-vm");
        let granted_unpublished = {
            let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::PerPublish);
            run_actors(1, |_, p| {
                for k in 1..=4u64 {
                    let t = m.ticket(p, &extents(&[((k - 1) * 64, 64)])).unwrap();
                    m.publish(p, t, root_for(t)).unwrap();
                }
                // A granted ticket that never publishes: must vanish.
                m.ticket(p, &extents(&[(512, 64)])).unwrap().version
            })
            .0[0]
            // Hard drop, no flush.
        };
        let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::PerPublish);
        assert_eq!(m.stats().published, 4);
        assert_eq!(m.stats().issued, 4, "unpublished grant rolled back");
        assert_eq!(m.history().len(), 4);
        run_actors(1, |_, p| {
            assert_eq!(m.latest(p).version, VersionId::new(4));
            assert_eq!(m.latest(p).size, 4 * 64);
            let snap = m.snapshot(p, VersionId::new(2)).unwrap();
            assert_eq!(
                snap.root,
                Some(root_for(Ticket {
                    version: VersionId::new(2),
                    capacity: snap.capacity,
                    size: snap.size,
                }))
            );
            // The never-published version is unknown, and its number is
            // handed out again to the next writer.
            assert!(matches!(
                m.snapshot(p, granted_unpublished),
                Err(Error::VersionNotFound { .. })
            ));
            let t = m.ticket(p, &extents(&[(256, 64)])).unwrap();
            assert_eq!(t.version, granted_unpublished);
            m.publish(p, t, root_for(t)).unwrap();
            assert_eq!(m.latest(p).version, granted_unpublished);
        });
    }

    #[test]
    fn durable_manager_capacity_and_size_survive_reopen() {
        let tmp = atomio_types::tempdir::TempDir::new("atomio-vm");
        {
            let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::Group(8));
            run_actors(1, |_, p| {
                let t1 = m.ticket(p, &extents(&[(0, 64)])).unwrap();
                let t2 = m.ticket(p, &extents(&[(500, 10)])).unwrap();
                m.publish(p, t2, root_for(t2)).unwrap();
                m.publish(p, t1, root_for(t1)).unwrap();
            });
            // Group(8) has both records unsynced; a graceful shutdown
            // flushes them.
            m.flush().unwrap();
        }
        let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::Group(8));
        run_actors(1, |_, p| {
            // Ticket state resumes exactly: capacity stays monotone and
            // appends land at the recovered tail.
            let (t3, ext) = m.ticket_append(p, 20).unwrap();
            assert_eq!(t3.version, VersionId::new(3));
            assert_eq!(ext.covering_range().offset, 510);
            assert_eq!(t3.size, 530);
            // The append crosses the recovered 512-byte capacity, which
            // must grow exactly as it would have without the restart.
            assert_eq!(t3.capacity, 1024);
        });
    }

    #[test]
    fn gc_floor_is_min_of_retention_and_oldest_lease() {
        let m = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            for k in 0..6u64 {
                let t = m.ticket(p, &extents(&[(k * 64, 64)])).unwrap();
                m.publish(p, t, root_for(t)).unwrap();
            }
            // KeepAll default: floor stays at 1.
            assert_eq!(m.gc_floor(p).unwrap().floor, VersionId::new(1));
            m.set_retention(p, RetentionPolicy::KeepLast(2)).unwrap();
            assert_eq!(m.gc_floor(p).unwrap().floor, VersionId::new(5));
            // A lease on v3 drags the floor down while live.
            let g = m.lease_acquire(p, VersionId::new(3), 60_000).unwrap();
            let f = m.gc_floor(p).unwrap();
            assert_eq!(f.floor, VersionId::new(3));
            assert_eq!(f.leases_active, 1);
            m.lease_release(p, g.lease).unwrap();
            assert_eq!(m.gc_floor(p).unwrap().floor, VersionId::new(5));
            // Leasing an unpublished or initial version is refused.
            assert!(matches!(
                m.lease_acquire(p, VersionId::new(99), 1_000),
                Err(Error::VersionNotFound { .. })
            ));
            assert!(matches!(
                m.lease_acquire(p, VersionId::INITIAL, 1_000),
                Err(Error::VersionNotFound { .. })
            ));
            // An expired lease renews into a typed error and unpins.
            let g = m.lease_acquire(p, VersionId::new(2), 1).unwrap();
            p.sleep(Duration::from_millis(5));
            assert!(matches!(
                m.lease_renew(p, g.lease, 1_000),
                Err(Error::LeaseExpired { .. })
            ));
            let f = m.gc_floor(p).unwrap();
            assert_eq!(f.floor, VersionId::new(5));
            assert_eq!(f.lease_expirations, 1);
        });
    }

    #[test]
    fn durable_manager_recovers_leases_and_retention() {
        let tmp = atomio_types::tempdir::TempDir::new("atomio-vm");
        let lease_id = {
            let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::PerPublish);
            run_actors(1, |_, p| {
                for k in 0..3u64 {
                    let t = m.ticket(p, &extents(&[(k * 64, 64)])).unwrap();
                    m.publish(p, t, root_for(t)).unwrap();
                }
                m.set_retention(p, RetentionPolicy::KeepLast(1)).unwrap();
                let g = m.lease_acquire(p, VersionId::new(1), 3_600_000).unwrap();
                let released = m.lease_acquire(p, VersionId::new(2), 3_600_000).unwrap();
                m.lease_release(p, released.lease).unwrap();
                g.lease
            })
            .0[0]
            // Hard drop, no flush (PerPublish synced every record).
        };
        let m = durable_vm(tmp.path(), atomio_types::FsyncPolicy::PerPublish);
        assert_eq!(m.retention(), RetentionPolicy::KeepLast(1));
        run_actors(1, |_, p| {
            // The live lease still pins v1 across the restart.
            let f = m.gc_floor(p).unwrap();
            assert_eq!(f.floor, VersionId::new(1));
            assert_eq!(f.leases_active, 1);
            m.lease_renew(p, lease_id, 3_600_000).unwrap();
            // Fresh grants never reuse a logged id.
            let g = m.lease_acquire(p, VersionId::new(3), 1_000).unwrap();
            assert!(g.lease > lease_id + 1);
            m.lease_release(p, lease_id).unwrap();
            m.lease_release(p, g.lease).unwrap();
            assert_eq!(m.gc_floor(p).unwrap().floor, VersionId::new(3));
        });
    }

    #[test]
    fn export_import_replays_the_published_prefix_verbatim() {
        let src = vm(TicketMode::Pipelined);
        run_actors(1, |_, p| {
            for k in 0..4u64 {
                let t = src.ticket(p, &extents(&[(k * 64, 64)])).unwrap();
                src.publish(p, t, root_for(t)).unwrap();
            }
            src.set_retention(p, RetentionPolicy::KeepLast(2)).unwrap();
            // A granted-but-unpublished ticket is NOT part of the export.
            src.ticket(p, &extents(&[(512, 64)])).unwrap();
        });
        assert_eq!(src.pending_grants(), 1);
        let (records, retention) = src.export_published();
        assert_eq!(records.len(), 4);

        let dst = vm(TicketMode::Pipelined);
        assert_eq!(dst.import_published(&records, retention).unwrap(), 4);
        assert_eq!(dst.retention(), RetentionPolicy::KeepLast(2));
        assert_eq!(dst.stats().published, 4);
        assert_eq!(dst.history().len(), 4);
        // Double replay is a no-op (handoff idempotence) — and it must
        // not clobber a retention policy set on the new owner after the
        // first import landed.
        dst.set_retention_local(RetentionPolicy::KeepLast(9))
            .unwrap();
        assert_eq!(dst.import_published(&records, retention).unwrap(), 0);
        assert_eq!(dst.stats().published, 4);
        assert_eq!(dst.retention(), RetentionPolicy::KeepLast(9));
        run_actors(1, |_, p| {
            for v in 1..=4u64 {
                assert_eq!(
                    dst.snapshot(p, VersionId::new(v)).unwrap(),
                    src.snapshot(p, VersionId::new(v)).unwrap(),
                    "snapshot v{v} must survive the handoff bit-identically"
                );
            }
            // The new owner resumes ticketing exactly where the prefix
            // ends: the next grant is v5 at the recovered tail.
            let (t, ext) = dst.ticket_append(p, 16).unwrap();
            assert_eq!(t.version, VersionId::new(5));
            assert_eq!(ext.covering_range().offset, 4 * 64);
        });
        // Gapped records are refused.
        let fresh = vm(TicketMode::Pipelined);
        assert!(fresh.import_published(&records[1..], retention).is_err());
        // A manager with its own grants refuses imports outright.
        run_actors(1, |_, p| {
            let busy = vm(TicketMode::Pipelined);
            busy.ticket(p, &extents(&[(0, 64)])).unwrap();
            assert!(busy.import_published(&records, retention).is_err());
        });
    }

    #[test]
    fn pipelined_mode_overlaps_builds() {
        let m = Arc::new(vm(TicketMode::Pipelined));
        let (_, total) = run_actors(4, |i, p| {
            let t = m.ticket(p, &extents(&[(i as u64 * 64, 64)])).unwrap();
            p.sleep(Duration::from_millis(1)); // "build"
            m.publish(p, t, root_for(t)).unwrap();
            m.wait_published(p, t.version);
        });
        // Builds overlap: well under the serialized 4ms.
        assert!(total < Duration::from_millis(2), "total {total:?}");
    }
}
