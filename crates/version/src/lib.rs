//! # atomio-version
//!
//! The version manager: the single tiny serialized point of the
//! versioning write path.
//!
//! Responsibilities (mirroring BlobSeer's version manager):
//!
//! 1. **Ticket issue** — assign each write a dense version number and
//!    record its write summary (extents + tree capacity) in the shared
//!    [`atomio_meta::VersionHistory`] *before* the writer moves any data,
//!    so concurrent writers can link to its future tree deterministically.
//! 2. **Ordered publication** — a snapshot becomes visible only when all
//!    its predecessors are visible. Publication is an O(1) bookkeeping
//!    flip; completed-but-early publications park in a pending set.
//! 3. **Snapshot registry** — readers resolve "latest" (or any historic
//!    version) to a root key + blob size without taking any lock that
//!    writers contend on.
//!
//! MPI atomicity falls out of this design: one `write_list` = one ticket
//! = one snapshot, and every reader sees a prefix of the publication
//! order — never a torn interleaving.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lease;
pub mod log;
pub mod manager;
pub mod oracle;

pub use lease::{LeaseGrant, LeaseManager};
pub use log::{LogReplay, LogStats, PublishLog, PublishRecord};
pub use manager::{
    GcFloor, PublicationStats, SnapshotRecord, Ticket, TicketMode, VersionExport, VersionManager,
};
pub use oracle::VersionOracle;
