//! The durable publish log: what makes "published" mean *durable*.
//!
//! Chunks and tree nodes are immutable — the disk backends below this
//! layer never rewrite them — so the entire crash-atomicity question
//! collapses to a single bit per version: **is its publish record on
//! stable storage?** The version manager appends one framed record per
//! snapshot the moment it enters the dense published prefix, fsyncing
//! per the deployment's [`FsyncPolicy`]. After a crash, recovery replays
//! the log: every record on disk is a readable snapshot, every version
//! past the last record — including granted-but-unpublished tickets —
//! never happened, and its number is simply re-issued.
//!
//! Each record carries everything a fresh manager needs to resume:
//! version, tree root, blob size, tree capacity, and the write's extent
//! list (rebuilding the [`VersionHistory`](atomio_meta::VersionHistory)
//! that later writers link their shadow trees against).

use atomio_meta::disk::{decode_opt_key, push_opt_key};
use atomio_meta::NodeKey;
use atomio_types::record::{append_record, load_or_init_superblock, scan_records, ByteReader};
use atomio_types::{Error, ExtentList, FsyncPolicy, Result, VersionId};
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Log record: one published snapshot.
const REC_PUBLISH: u8 = 1;

/// Superblock tag marking a directory as a publish log ("vers").
const VERSION_TAG: u64 = 0x7665_7273;

/// One published snapshot as logged: the resume state of a version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishRecord {
    /// The snapshot's version.
    pub version: VersionId,
    /// Root of its tree (`None` when the snapshot has no tree — never
    /// produced by current writers, but the encoding is total).
    pub root: Option<NodeKey>,
    /// Blob size at this version.
    pub size: u64,
    /// Tree capacity of this version.
    pub capacity: u64,
    /// The write's extents (rebuilds the write-summary history).
    pub extents: ExtentList,
}

fn encode_publish(rec: &PublishRecord) -> Vec<u8> {
    let ranges = rec.extents.ranges();
    let mut body = Vec::with_capacity(8 + 33 + 8 + 8 + 4 + 16 * ranges.len());
    body.extend_from_slice(&rec.version.raw().to_be_bytes());
    push_opt_key(&mut body, rec.root);
    body.extend_from_slice(&rec.size.to_be_bytes());
    body.extend_from_slice(&rec.capacity.to_be_bytes());
    body.extend_from_slice(&(ranges.len() as u32).to_be_bytes());
    for r in ranges {
        body.extend_from_slice(&r.offset.to_be_bytes());
        body.extend_from_slice(&r.len.to_be_bytes());
    }
    body
}

fn decode_publish(body: &[u8]) -> Option<PublishRecord> {
    let mut r = ByteReader::new(body);
    let version = VersionId::new(r.u64()?);
    let root = decode_opt_key(&mut r)?;
    let size = r.u64()?;
    let capacity = r.u64()?;
    let count = r.u32()?;
    let mut pairs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        pairs.push((r.u64()?, r.u64()?));
    }
    if !r.done() {
        return None;
    }
    Some(PublishRecord {
        version,
        root,
        size,
        capacity,
        extents: ExtentList::from_pairs(pairs),
    })
}

/// Counters describing a log's fsync behaviour — the E9d ablation reads
/// these to relate ack latency to the durability window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records appended.
    pub appends: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
    /// Largest number of appended-but-unsynced records ever outstanding
    /// — the worst-case count of acknowledged publishes a crash at the
    /// wrong moment would roll back.
    pub unsynced_peak: u32,
}

#[derive(Debug)]
struct LogState {
    file: std::fs::File,
    len: u64,
    unsynced: u32,
    stats: LogStats,
}

/// An append-only log of publish records with policy-driven fsync.
#[derive(Debug)]
pub struct PublishLog {
    state: Mutex<LogState>,
    policy: FsyncPolicy,
}

impl PublishLog {
    /// Opens (creating or recovering) the publish log under `dir`,
    /// returning the log plus every whole record already on disk, in
    /// publish order. A torn tail record is truncated away: the publish
    /// it described was never acknowledged as durable.
    ///
    /// # Errors
    /// [`Error::Internal`] on I/O failure, a foreign or corrupt
    /// superblock, or a malformed (non-torn) record.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<(Self, Vec<PublishRecord>)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("publish log dir {}", dir.display()), e))?;
        load_or_init_superblock(&dir.join("superblock"), 1, VERSION_TAG, "publish log")?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("publish.log"))
            .map_err(|e| Error::io("publish log open", e))?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)
            .map_err(|e| Error::io("publish log scan", e))?;
        let scan = scan_records(&contents);
        if scan.truncated {
            file.set_len(scan.valid_len)
                .and_then(|_| file.sync_data())
                .map_err(|e| Error::io("publish log truncate torn tail", e))?;
        }
        let mut records = Vec::with_capacity(scan.records.len());
        for rec in &scan.records {
            if rec.kind != REC_PUBLISH {
                return Err(Error::Internal(format!(
                    "publish log: unknown record kind {}",
                    rec.kind
                )));
            }
            let rec = decode_publish(&rec.body)
                .ok_or_else(|| Error::Internal("publish log: malformed record".into()))?;
            if rec.version.raw() != records.len() as u64 + 1 {
                return Err(Error::Internal(format!(
                    "publish log: record {} out of order (expected v{})",
                    rec.version,
                    records.len() + 1
                )));
            }
            records.push(rec);
        }
        Ok((
            PublishLog {
                state: Mutex::new(LogState {
                    file,
                    len: scan.valid_len,
                    unsynced: 0,
                    stats: LogStats::default(),
                }),
                policy,
            },
            records,
        ))
    }

    /// Appends one publish record, fsyncing per the log's policy.
    pub fn append(&self, rec: &PublishRecord) -> Result<()> {
        let mut framed = Vec::new();
        append_record(&mut framed, REC_PUBLISH, &encode_publish(rec));
        let mut st = self.state.lock();
        let at = st.len;
        st.file
            .seek(SeekFrom::Start(at))
            .and_then(|_| st.file.write_all(&framed))
            .map_err(|e| Error::io("publish log append", e))?;
        st.len += framed.len() as u64;
        st.unsynced += 1;
        st.stats.appends += 1;
        st.stats.unsynced_peak = st.stats.unsynced_peak.max(st.unsynced);
        if self.policy.due(st.unsynced) {
            st.file
                .sync_data()
                .map_err(|e| Error::io("publish log sync", e))?;
            st.unsynced = 0;
            st.stats.syncs += 1;
        }
        Ok(())
    }

    /// Forces outstanding appends to stable storage (graceful shutdown
    /// under `Group`/`Deferred` policies).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.unsynced > 0 {
            st.file
                .sync_data()
                .map_err(|e| Error::io("publish log flush", e))?;
            st.unsynced = 0;
            st.stats.syncs += 1;
        }
        Ok(())
    }

    /// Append/sync counters since open.
    pub fn stats(&self) -> LogStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_types::tempdir::TempDir;
    use atomio_types::{BlobId, ByteRange};

    fn rec(v: u64) -> PublishRecord {
        PublishRecord {
            version: VersionId::new(v),
            root: Some(NodeKey::new(
                BlobId::new(0),
                VersionId::new(v),
                ByteRange::new(0, 1024),
            )),
            size: v * 100,
            capacity: 1024,
            extents: ExtentList::from_pairs([(0, 64), (128, v * 8)]),
        }
    }

    #[test]
    fn publish_records_roundtrip() {
        for v in 1..=3 {
            assert_eq!(decode_publish(&encode_publish(&rec(v))), Some(rec(v)));
        }
        let rootless = PublishRecord {
            root: None,
            ..rec(1)
        };
        assert_eq!(
            decode_publish(&encode_publish(&rootless)),
            Some(rootless.clone())
        );
        let mut garbage = encode_publish(&rec(1));
        garbage.push(0);
        assert_eq!(decode_publish(&garbage), None);
    }

    #[test]
    fn log_replays_in_order_after_hard_drop() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            assert!(replay.is_empty());
            for v in 1..=5 {
                log.append(&rec(v)).unwrap();
            }
            assert_eq!(log.stats().appends, 5);
            assert_eq!(log.stats().syncs, 5);
        }
        let (_, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.len(), 5);
        assert_eq!(replay[2], rec(3));
    }

    #[test]
    fn torn_tail_rolls_back_the_unacknowledged_publish() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            log.append(&rec(1)).unwrap();
            log.append(&rec(2)).unwrap();
        }
        // Crash mid-append of v3: half a record at the tail.
        let mut framed = Vec::new();
        append_record(&mut framed, REC_PUBLISH, &encode_publish(&rec(3)));
        framed.truncate(framed.len() - 7);
        let mut f = OpenOptions::new()
            .append(true)
            .open(tmp.path().join("publish.log"))
            .unwrap();
        f.write_all(&framed).unwrap();
        drop(f);

        let (log, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.len(), 2);
        // v3's number is free again: a re-publish appends cleanly.
        log.append(&rec(3)).unwrap();
        drop(log);
        let (_, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.len(), 3);
    }

    #[test]
    fn group_policy_batches_syncs() {
        let tmp = TempDir::new("atomio-publog");
        let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::Group(4)).unwrap();
        for v in 1..=10 {
            log.append(&rec(v)).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.syncs, 2, "4 + 4 synced, 2 pending");
        assert_eq!(stats.unsynced_peak, 4);
        log.flush().unwrap();
        assert_eq!(log.stats().syncs, 3);
        log.flush().unwrap(); // idempotent when clean
        assert_eq!(log.stats().syncs, 3);
    }

    #[test]
    fn deferred_policy_never_syncs_on_append() {
        let tmp = TempDir::new("atomio-publog");
        let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::Deferred).unwrap();
        for v in 1..=10 {
            log.append(&rec(v)).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.unsynced_peak, 10);
    }

    #[test]
    fn out_of_order_log_rejected() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            log.append(&rec(2)).unwrap(); // corrupt writer: skips v1
        }
        assert!(matches!(
            PublishLog::open(tmp.path(), FsyncPolicy::PerPublish),
            Err(Error::Internal(_))
        ));
    }
}
