//! The durable publish log: what makes "published" mean *durable*.
//!
//! Chunks and tree nodes are immutable — the disk backends below this
//! layer never rewrite them — so the entire crash-atomicity question
//! collapses to a single bit per version: **is its publish record on
//! stable storage?** The version manager appends one framed record per
//! snapshot the moment it enters the dense published prefix, fsyncing
//! per the deployment's [`FsyncPolicy`]. After a crash, recovery replays
//! the log: every record on disk is a readable snapshot, every version
//! past the last record — including granted-but-unpublished tickets —
//! never happened, and its number is simply re-issued.
//!
//! Each record carries everything a fresh manager needs to resume:
//! version, tree root, blob size, tree capacity, and the write's extent
//! list (rebuilding the [`VersionHistory`](atomio_meta::VersionHistory)
//! that later writers link their shadow trees against).

use crate::lease::LeaseGrant;
use atomio_meta::disk::{decode_opt_key, push_opt_key};
use atomio_meta::NodeKey;
use atomio_types::record::{append_record, load_or_init_superblock, scan_records, ByteReader};
use atomio_types::{Error, ExtentList, FsyncPolicy, Result, RetentionPolicy, VersionId};
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Log record: one published snapshot.
const REC_PUBLISH: u8 = 1;

/// Log record: the blob's retention policy changed (last one wins).
const REC_RETENTION: u8 = 2;

/// Log record: a snapshot lease was granted or renewed (last grant per
/// lease id wins — a renewal is re-logged with the extended expiry).
const REC_LEASE: u8 = 3;

/// Log record: a lease was released before its TTL lapsed.
const REC_LEASE_RELEASE: u8 = 4;

/// Superblock tag marking a directory as a publish log ("vers").
const VERSION_TAG: u64 = 0x7665_7273;

/// One published snapshot as logged: the resume state of a version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishRecord {
    /// The snapshot's version.
    pub version: VersionId,
    /// Root of its tree (`None` when the snapshot has no tree — never
    /// produced by current writers, but the encoding is total).
    pub root: Option<NodeKey>,
    /// Blob size at this version.
    pub size: u64,
    /// Tree capacity of this version.
    pub capacity: u64,
    /// The write's extents (rebuilds the write-summary history).
    pub extents: ExtentList,
}

fn encode_publish(rec: &PublishRecord) -> Vec<u8> {
    let ranges = rec.extents.ranges();
    let mut body = Vec::with_capacity(8 + 33 + 8 + 8 + 4 + 16 * ranges.len());
    body.extend_from_slice(&rec.version.raw().to_be_bytes());
    push_opt_key(&mut body, rec.root);
    body.extend_from_slice(&rec.size.to_be_bytes());
    body.extend_from_slice(&rec.capacity.to_be_bytes());
    body.extend_from_slice(&(ranges.len() as u32).to_be_bytes());
    for r in ranges {
        body.extend_from_slice(&r.offset.to_be_bytes());
        body.extend_from_slice(&r.len.to_be_bytes());
    }
    body
}

fn decode_publish(body: &[u8]) -> Option<PublishRecord> {
    let mut r = ByteReader::new(body);
    let version = VersionId::new(r.u64()?);
    let root = decode_opt_key(&mut r)?;
    let size = r.u64()?;
    let capacity = r.u64()?;
    let count = r.u32()?;
    let mut pairs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        pairs.push((r.u64()?, r.u64()?));
    }
    if !r.done() {
        return None;
    }
    Some(PublishRecord {
        version,
        root,
        size,
        capacity,
        extents: ExtentList::from_pairs(pairs),
    })
}

fn encode_retention(policy: RetentionPolicy) -> Vec<u8> {
    let (tag, value): (u8, u64) = match policy {
        RetentionPolicy::KeepAll => (1, 0),
        RetentionPolicy::KeepLast(n) => (2, n),
        RetentionPolicy::KeepAbove(v) => (3, v.raw()),
    };
    let mut body = Vec::with_capacity(9);
    body.push(tag);
    body.extend_from_slice(&value.to_be_bytes());
    body
}

fn decode_retention(body: &[u8]) -> Option<RetentionPolicy> {
    let mut r = ByteReader::new(body);
    let tag = r.u8()?;
    let value = r.u64()?;
    if !r.done() {
        return None;
    }
    match tag {
        1 => Some(RetentionPolicy::KeepAll),
        2 if value > 0 => Some(RetentionPolicy::KeepLast(value)),
        3 => Some(RetentionPolicy::KeepAbove(VersionId::new(value))),
        _ => None,
    }
}

fn encode_lease(grant: &LeaseGrant) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    body.extend_from_slice(&grant.lease.to_be_bytes());
    body.extend_from_slice(&grant.version.raw().to_be_bytes());
    body.extend_from_slice(&grant.expires_at_ms.to_be_bytes());
    body
}

fn decode_lease(body: &[u8]) -> Option<LeaseGrant> {
    let mut r = ByteReader::new(body);
    let grant = LeaseGrant {
        lease: r.u64()?,
        version: VersionId::new(r.u64()?),
        expires_at_ms: r.u64()?,
    };
    if !r.done() {
        return None;
    }
    Some(grant)
}

/// Everything a recovering version manager reads back out of the log:
/// the dense published prefix plus the reclamation state riding in it.
#[derive(Debug, Default)]
pub struct LogReplay {
    /// Published snapshots, in publish (= version) order.
    pub publishes: Vec<PublishRecord>,
    /// The blob's retention policy, if one was ever logged.
    pub retention: Option<RetentionPolicy>,
    /// Leases granted and never released as of the crash, in id order.
    /// Expiry is *not* applied here — the recovering manager restores
    /// them and lets its own clock lapse any that are stale.
    pub leases: Vec<LeaseGrant>,
    /// The largest lease id ever logged (released or not), so the
    /// allocator never reissues an id.
    pub max_lease_id: u64,
}

/// Counters describing a log's fsync behaviour — the E9d ablation reads
/// these to relate ack latency to the durability window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records appended.
    pub appends: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
    /// Largest number of appended-but-unsynced records ever outstanding
    /// — the worst-case count of acknowledged publishes a crash at the
    /// wrong moment would roll back.
    pub unsynced_peak: u32,
}

#[derive(Debug)]
struct LogState {
    file: std::fs::File,
    len: u64,
    unsynced: u32,
    stats: LogStats,
}

/// An append-only log of publish records with policy-driven fsync.
#[derive(Debug)]
pub struct PublishLog {
    state: Mutex<LogState>,
    policy: FsyncPolicy,
}

impl PublishLog {
    /// Opens (creating or recovering) the publish log under `dir`,
    /// returning the log plus the replayed state: every whole publish
    /// record in publish order, the last retention policy logged, and
    /// the leases still outstanding. A torn tail record is truncated
    /// away: the operation it described was never acknowledged as
    /// durable.
    ///
    /// # Errors
    /// [`Error::Internal`] on I/O failure, a foreign or corrupt
    /// superblock, or a malformed (non-torn) record.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<(Self, LogReplay)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("publish log dir {}", dir.display()), e))?;
        load_or_init_superblock(&dir.join("superblock"), 1, VERSION_TAG, "publish log")?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join("publish.log"))
            .map_err(|e| Error::io("publish log open", e))?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)
            .map_err(|e| Error::io("publish log scan", e))?;
        let scan = scan_records(&contents);
        if scan.truncated {
            file.set_len(scan.valid_len)
                .and_then(|_| file.sync_data())
                .map_err(|e| Error::io("publish log truncate torn tail", e))?;
        }
        let mut replay = LogReplay::default();
        let malformed = || Error::Internal("publish log: malformed record".into());
        let mut live: std::collections::BTreeMap<u64, LeaseGrant> = Default::default();
        for rec in &scan.records {
            match rec.kind {
                REC_PUBLISH => {
                    let rec = decode_publish(&rec.body).ok_or_else(malformed)?;
                    // The dense-ordering invariant applies to publishes
                    // only: reclamation records interleave freely.
                    if rec.version.raw() != replay.publishes.len() as u64 + 1 {
                        return Err(Error::Internal(format!(
                            "publish log: record {} out of order (expected v{})",
                            rec.version,
                            replay.publishes.len() + 1
                        )));
                    }
                    replay.publishes.push(rec);
                }
                REC_RETENTION => {
                    replay.retention = Some(decode_retention(&rec.body).ok_or_else(malformed)?);
                }
                REC_LEASE => {
                    let grant = decode_lease(&rec.body).ok_or_else(malformed)?;
                    replay.max_lease_id = replay.max_lease_id.max(grant.lease);
                    live.insert(grant.lease, grant);
                }
                REC_LEASE_RELEASE => {
                    let mut r = ByteReader::new(&rec.body);
                    let lease = r.u64().filter(|_| r.done()).ok_or_else(malformed)?;
                    replay.max_lease_id = replay.max_lease_id.max(lease);
                    live.remove(&lease);
                }
                other => {
                    return Err(Error::Internal(format!(
                        "publish log: unknown record kind {other}"
                    )));
                }
            }
        }
        replay.leases = live.into_values().collect();
        Ok((
            PublishLog {
                state: Mutex::new(LogState {
                    file,
                    len: scan.valid_len,
                    unsynced: 0,
                    stats: LogStats::default(),
                }),
                policy,
            },
            replay,
        ))
    }

    /// Appends one publish record, fsyncing per the log's policy.
    pub fn append(&self, rec: &PublishRecord) -> Result<()> {
        self.append_framed(REC_PUBLISH, &encode_publish(rec))
    }

    /// Logs a retention-policy change (last one wins on replay).
    pub fn append_retention(&self, policy: RetentionPolicy) -> Result<()> {
        self.append_framed(REC_RETENTION, &encode_retention(policy))
    }

    /// Logs a lease grant or renewal (the latest record per id wins).
    pub fn append_lease(&self, grant: &LeaseGrant) -> Result<()> {
        self.append_framed(REC_LEASE, &encode_lease(grant))
    }

    /// Logs an explicit lease release.
    pub fn append_lease_release(&self, lease: u64) -> Result<()> {
        self.append_framed(REC_LEASE_RELEASE, &lease.to_be_bytes())
    }

    fn append_framed(&self, kind: u8, body: &[u8]) -> Result<()> {
        let mut framed = Vec::new();
        append_record(&mut framed, kind, body);
        let mut st = self.state.lock();
        let at = st.len;
        st.file
            .seek(SeekFrom::Start(at))
            .and_then(|_| st.file.write_all(&framed))
            .map_err(|e| Error::io("publish log append", e))?;
        st.len += framed.len() as u64;
        st.unsynced += 1;
        st.stats.appends += 1;
        st.stats.unsynced_peak = st.stats.unsynced_peak.max(st.unsynced);
        if self.policy.due(st.unsynced) {
            st.file
                .sync_data()
                .map_err(|e| Error::io("publish log sync", e))?;
            st.unsynced = 0;
            st.stats.syncs += 1;
        }
        Ok(())
    }

    /// Forces outstanding appends to stable storage (graceful shutdown
    /// under `Group`/`Deferred` policies).
    pub fn flush(&self) -> Result<()> {
        let mut st = self.state.lock();
        if st.unsynced > 0 {
            st.file
                .sync_data()
                .map_err(|e| Error::io("publish log flush", e))?;
            st.unsynced = 0;
            st.stats.syncs += 1;
        }
        Ok(())
    }

    /// Append/sync counters since open.
    pub fn stats(&self) -> LogStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_types::tempdir::TempDir;
    use atomio_types::{BlobId, ByteRange};

    fn rec(v: u64) -> PublishRecord {
        PublishRecord {
            version: VersionId::new(v),
            root: Some(NodeKey::new(
                BlobId::new(0),
                VersionId::new(v),
                ByteRange::new(0, 1024),
            )),
            size: v * 100,
            capacity: 1024,
            extents: ExtentList::from_pairs([(0, 64), (128, v * 8)]),
        }
    }

    #[test]
    fn publish_records_roundtrip() {
        for v in 1..=3 {
            assert_eq!(decode_publish(&encode_publish(&rec(v))), Some(rec(v)));
        }
        let rootless = PublishRecord {
            root: None,
            ..rec(1)
        };
        assert_eq!(
            decode_publish(&encode_publish(&rootless)),
            Some(rootless.clone())
        );
        let mut garbage = encode_publish(&rec(1));
        garbage.push(0);
        assert_eq!(decode_publish(&garbage), None);
    }

    #[test]
    fn log_replays_in_order_after_hard_drop() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            assert!(replay.publishes.is_empty());
            for v in 1..=5 {
                log.append(&rec(v)).unwrap();
            }
            assert_eq!(log.stats().appends, 5);
            assert_eq!(log.stats().syncs, 5);
        }
        let (_, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.publishes.len(), 5);
        assert_eq!(replay.publishes[2], rec(3));
    }

    #[test]
    fn torn_tail_rolls_back_the_unacknowledged_publish() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            log.append(&rec(1)).unwrap();
            log.append(&rec(2)).unwrap();
        }
        // Crash mid-append of v3: half a record at the tail.
        let mut framed = Vec::new();
        append_record(&mut framed, REC_PUBLISH, &encode_publish(&rec(3)));
        framed.truncate(framed.len() - 7);
        let mut f = OpenOptions::new()
            .append(true)
            .open(tmp.path().join("publish.log"))
            .unwrap();
        f.write_all(&framed).unwrap();
        drop(f);

        let (log, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.publishes.len(), 2);
        // v3's number is free again: a re-publish appends cleanly.
        log.append(&rec(3)).unwrap();
        drop(log);
        let (_, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.publishes.len(), 3);
    }

    #[test]
    fn retention_and_lease_records_replay_interleaved_with_publishes() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            log.append(&rec(1)).unwrap();
            log.append_retention(RetentionPolicy::KeepLast(4)).unwrap();
            log.append_lease(&LeaseGrant {
                lease: 1,
                version: VersionId::new(1),
                expires_at_ms: 5_000,
            })
            .unwrap();
            log.append(&rec(2)).unwrap();
            log.append_lease(&LeaseGrant {
                lease: 2,
                version: VersionId::new(2),
                expires_at_ms: 6_000,
            })
            .unwrap();
            // Renewal re-logs lease 1 with a later expiry; lease 2 is
            // released cleanly.
            log.append_lease(&LeaseGrant {
                lease: 1,
                version: VersionId::new(1),
                expires_at_ms: 9_000,
            })
            .unwrap();
            log.append_lease_release(2).unwrap();
            log.append_retention(RetentionPolicy::KeepLast(2)).unwrap();
        }
        let (_, replay) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(replay.publishes.len(), 2, "dense publish prefix intact");
        assert_eq!(replay.retention, Some(RetentionPolicy::KeepLast(2)));
        assert_eq!(
            replay.leases,
            vec![LeaseGrant {
                lease: 1,
                version: VersionId::new(1),
                expires_at_ms: 9_000,
            }],
            "renewal superseded the first grant; release dropped lease 2"
        );
        assert_eq!(replay.max_lease_id, 2);
    }

    #[test]
    fn group_policy_batches_syncs() {
        let tmp = TempDir::new("atomio-publog");
        let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::Group(4)).unwrap();
        for v in 1..=10 {
            log.append(&rec(v)).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.syncs, 2, "4 + 4 synced, 2 pending");
        assert_eq!(stats.unsynced_peak, 4);
        log.flush().unwrap();
        assert_eq!(log.stats().syncs, 3);
        log.flush().unwrap(); // idempotent when clean
        assert_eq!(log.stats().syncs, 3);
    }

    #[test]
    fn deferred_policy_never_syncs_on_append() {
        let tmp = TempDir::new("atomio-publog");
        let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::Deferred).unwrap();
        for v in 1..=10 {
            log.append(&rec(v)).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.unsynced_peak, 10);
    }

    #[test]
    fn out_of_order_log_rejected() {
        let tmp = TempDir::new("atomio-publog");
        {
            let (log, _) = PublishLog::open(tmp.path(), FsyncPolicy::PerPublish).unwrap();
            log.append(&rec(2)).unwrap(); // corrupt writer: skips v1
        }
        assert!(matches!(
            PublishLog::open(tmp.path(), FsyncPolicy::PerPublish),
            Err(Error::Internal(_))
        ));
    }
}
