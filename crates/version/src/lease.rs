//! Snapshot leases: time-bounded read pins that feed the GC floor.
//!
//! A reader that wants a stable view of a historic snapshot acquires a
//! lease on it. While the lease is live the collector's floor cannot
//! rise past the leased version, so every chunk and tree node reachable
//! from it survives collection. Leases are *time-bounded*: a reader
//! that crashes (or stalls past its TTL) stops pinning history the
//! moment its lease expires — no distributed failure detector needed.
//! A reader that outlives its TTL gets a typed
//! [`atomio_types::Error::LeaseExpired`], never torn bytes, because it
//! re-validates the lease before touching storage.
//!
//! The table is deliberately time-agnostic: every method takes `now_ms`
//! so the in-process deployment can drive it from the virtual clock
//! (`Participant::now_ns / 1_000_000`) while the version server uses
//! wall clock. Expiry is lazy — expired rows are dropped (and counted)
//! whenever the table is consulted, not by a background timer.

use atomio_types::VersionId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One granted snapshot lease, as returned to the reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// Opaque lease id; quote it on renew/release.
    pub lease: u64,
    /// The snapshot the lease pins.
    pub version: VersionId,
    /// Absolute expiry instant (same clock as the `now_ms` the caller
    /// passes — virtual ms in-process, wall ms on a server).
    pub expires_at_ms: u64,
}

#[derive(Debug, Clone, Copy)]
struct LeaseRow {
    version: VersionId,
    expires_at_ms: u64,
}

/// The lease table hosted by a blob's version manager.
#[derive(Debug, Default)]
pub struct LeaseManager {
    next: u64,
    live: HashMap<u64, LeaseRow>,
    expirations: u64,
}

impl LeaseManager {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every lease whose expiry is at or before `now_ms`,
    /// counting each as an expiration.
    fn expire(&mut self, now_ms: u64) {
        let before = self.live.len();
        self.live.retain(|_, row| row.expires_at_ms > now_ms);
        self.expirations += (before - self.live.len()) as u64;
    }

    /// Grants a fresh lease on `version` lasting `ttl_ms` from `now_ms`.
    pub fn acquire(&mut self, version: VersionId, ttl_ms: u64, now_ms: u64) -> LeaseGrant {
        self.expire(now_ms);
        self.next += 1;
        let lease = self.next;
        let expires_at_ms = now_ms.saturating_add(ttl_ms.max(1));
        self.live.insert(
            lease,
            LeaseRow {
                version,
                expires_at_ms,
            },
        );
        LeaseGrant {
            lease,
            version,
            expires_at_ms,
        }
    }

    /// Extends a live lease to `now_ms + ttl_ms`. Returns `None` when
    /// the lease already expired (or never existed) — the caller maps
    /// that to [`atomio_types::Error::LeaseExpired`]. A renewal never
    /// shortens a lease.
    pub fn renew(&mut self, lease: u64, ttl_ms: u64, now_ms: u64) -> Option<LeaseGrant> {
        self.expire(now_ms);
        let row = self.live.get_mut(&lease)?;
        row.expires_at_ms = row.expires_at_ms.max(now_ms.saturating_add(ttl_ms.max(1)));
        Some(LeaseGrant {
            lease,
            version: row.version,
            expires_at_ms: row.expires_at_ms,
        })
    }

    /// Releases a lease, returning the version it pinned (`None` when
    /// it already expired — releasing an expired lease is not an
    /// error, the pin is gone either way).
    pub fn release(&mut self, lease: u64, now_ms: u64) -> Option<VersionId> {
        self.expire(now_ms);
        self.live.remove(&lease).map(|row| row.version)
    }

    /// The version pinned by `lease`, if still live at `now_ms`.
    pub fn pinned(&mut self, lease: u64, now_ms: u64) -> Option<VersionId> {
        self.expire(now_ms);
        self.live.get(&lease).map(|row| row.version)
    }

    /// The oldest version any live lease pins — the lease contribution
    /// to the GC floor. `None` when no lease is live.
    pub fn oldest_live(&mut self, now_ms: u64) -> Option<VersionId> {
        self.expire(now_ms);
        self.live.values().map(|row| row.version).min()
    }

    /// Live lease count at `now_ms`.
    pub fn active(&mut self, now_ms: u64) -> u64 {
        self.expire(now_ms);
        self.live.len() as u64
    }

    /// Total leases that have lapsed (TTL passed without release).
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Reinstates a recovered lease during durable replay, keeping the
    /// id allocator past every recovered id. Expiry still applies: a
    /// lease whose TTL lapsed across the crash is simply dropped by the
    /// next consultation.
    pub fn restore(&mut self, lease: u64, version: VersionId, expires_at_ms: u64) {
        self.next = self.next.max(lease);
        self.live.insert(
            lease,
            LeaseRow {
                version,
                expires_at_ms,
            },
        );
    }

    /// Forgets a recovered lease during durable replay (a logged
    /// release). No expiration is counted: the reader let go cleanly.
    pub fn restore_release(&mut self, lease: u64) {
        self.live.remove(&lease);
    }

    /// Keeps the id allocator past every id the log ever issued, even
    /// ones released before the crash.
    pub fn reserve_ids(&mut self, max_id: u64) {
        self.next = self.next.max(max_id);
    }

    /// Every live lease at `now_ms`, for checkpointing into a log.
    pub fn live_rows(&mut self, now_ms: u64) -> Vec<LeaseGrant> {
        self.expire(now_ms);
        let mut rows: Vec<LeaseGrant> = self
            .live
            .iter()
            .map(|(&lease, row)| LeaseGrant {
                lease,
                version: row.version,
                expires_at_ms: row.expires_at_ms,
            })
            .collect();
        rows.sort_by_key(|g| g.lease);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_pins_until_ttl_then_unpins_automatically() {
        let mut lm = LeaseManager::new();
        let g = lm.acquire(VersionId::new(3), 100, 1_000);
        assert_eq!(g.expires_at_ms, 1_100);
        assert_eq!(lm.oldest_live(1_099), Some(VersionId::new(3)));
        assert_eq!(lm.active(1_099), 1);
        // At the expiry instant the pin is gone and counted.
        assert_eq!(lm.oldest_live(1_100), None);
        assert_eq!(lm.active(1_100), 0);
        assert_eq!(lm.expirations(), 1);
    }

    #[test]
    fn oldest_live_is_the_min_across_leases() {
        let mut lm = LeaseManager::new();
        lm.acquire(VersionId::new(9), 1_000, 0);
        let g5 = lm.acquire(VersionId::new(5), 1_000, 0);
        lm.acquire(VersionId::new(7), 1_000, 0);
        assert_eq!(lm.oldest_live(10), Some(VersionId::new(5)));
        assert_eq!(lm.release(g5.lease, 10), Some(VersionId::new(5)));
        assert_eq!(lm.oldest_live(10), Some(VersionId::new(7)));
        assert_eq!(lm.expirations(), 0, "releases are not expirations");
    }

    #[test]
    fn renew_extends_but_never_shortens() {
        let mut lm = LeaseManager::new();
        let g = lm.acquire(VersionId::new(2), 500, 0);
        let r = lm.renew(g.lease, 100, 300).unwrap();
        assert_eq!(
            r.expires_at_ms, 500,
            "shorter renewal keeps the later expiry"
        );
        let r = lm.renew(g.lease, 500, 300).unwrap();
        assert_eq!(r.expires_at_ms, 800);
        // Past expiry: renew refuses, and the lapse is counted once.
        assert_eq!(lm.renew(g.lease, 500, 800), None);
        assert_eq!(lm.expirations(), 1);
        assert_eq!(lm.renew(999, 500, 0), None, "unknown lease");
    }

    #[test]
    fn restore_replays_live_rows_and_reissues_past_recovered_ids() {
        let mut lm = LeaseManager::new();
        lm.restore(4, VersionId::new(6), 2_000);
        lm.restore(2, VersionId::new(3), 2_000);
        lm.restore_release(2);
        assert_eq!(lm.oldest_live(1_000), Some(VersionId::new(6)));
        let g = lm.acquire(VersionId::new(8), 10, 1_000);
        assert!(g.lease > 4, "allocator resumed past recovered ids");
        let rows = lm.live_rows(1_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].lease, 4);
    }
}
