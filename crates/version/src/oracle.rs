//! The version-oracle seam: one trait covering the ticket-grant,
//! publication, and snapshot-lookup surface of the version manager, so
//! the blob write path works identically against the in-process
//! [`VersionManager`] and a server-hosted remote proxy.
//!
//! Every method is fallible: over a real transport any of these calls
//! can surface a typed [`atomio_types::Error::Transport`], and the
//! in-process implementation simply never produces one. This is the
//! contract `Blob::commit_write` is written against — the third
//! independently deployable service plugs in here.

use crate::lease::LeaseGrant;
use crate::manager::{GcFloor, SnapshotRecord, Ticket, VersionManager};
use atomio_meta::{NodeKey, VersionHistory};
use atomio_simgrid::Participant;
use atomio_types::{ExtentList, Result, RetentionPolicy, VersionId};
use std::sync::Arc;

/// The version-manager surface the blob write/read path depends on.
///
/// Implementations: [`VersionManager`] (in-process, the Loopback
/// deployment) and `atomio_rpc::RemoteVersionManager` (a proxy speaking
/// the wire protocol to an `atomio-version-server`).
pub trait VersionOracle: Send + Sync + std::fmt::Debug {
    /// The write-summary history the metadata builder reads. For a
    /// remote oracle this is the client-side mirror fed by grant deltas.
    fn history(&self) -> &Arc<VersionHistory>;

    /// Issues a write ticket for explicit extents and records the write
    /// summary in [`Self::history`] before returning.
    fn ticket(&self, p: &Participant, extents: &ExtentList) -> Result<Ticket>;

    /// Issues an append ticket for `len` bytes at end-of-blob; returns
    /// the ticket and the atomically-assigned extents.
    fn ticket_append(&self, p: &Participant, len: u64) -> Result<(Ticket, ExtentList)>;

    /// Reports the completed tree build of `ticket`'s version. Does not
    /// wait for visibility (see [`Self::wait_published`]).
    fn publish(&self, p: &Participant, ticket: Ticket, root: NodeKey) -> Result<()>;

    /// True once `version` is visible to readers.
    fn is_published(&self, version: VersionId) -> Result<bool>;

    /// Blocks until `version` is visible.
    fn wait_published(&self, p: &Participant, version: VersionId) -> Result<()>;

    /// The latest published snapshot (the empty initial snapshot if no
    /// write has published yet).
    fn latest(&self, p: &Participant) -> Result<SnapshotRecord>;

    /// Looks up a specific published snapshot.
    fn snapshot(&self, p: &Participant, version: VersionId) -> Result<SnapshotRecord>;

    /// Sets the blob's retention policy (how much history the collector
    /// must preserve regardless of leases).
    fn set_retention(&self, p: &Participant, policy: RetentionPolicy) -> Result<()>;

    /// Acquires a time-bounded snapshot lease pinning `version` (and
    /// everything at or above it) against collection.
    fn lease_acquire(&self, p: &Participant, version: VersionId, ttl_ms: u64)
        -> Result<LeaseGrant>;

    /// Extends a live lease; [`atomio_types::Error::LeaseExpired`] once
    /// it has lapsed.
    fn lease_renew(&self, p: &Participant, lease: u64, ttl_ms: u64) -> Result<LeaseGrant>;

    /// Releases a lease (idempotent).
    fn lease_release(&self, p: &Participant, lease: u64) -> Result<()>;

    /// The manager-side reclamation floor: `min(retention floor, oldest
    /// live lease)`. Callers still clamp by any host-side WAL base.
    fn gc_floor(&self, p: &Participant) -> Result<GcFloor>;
}

impl VersionOracle for VersionManager {
    fn history(&self) -> &Arc<VersionHistory> {
        VersionManager::history(self)
    }

    fn ticket(&self, p: &Participant, extents: &ExtentList) -> Result<Ticket> {
        VersionManager::ticket(self, p, extents)
    }

    fn ticket_append(&self, p: &Participant, len: u64) -> Result<(Ticket, ExtentList)> {
        VersionManager::ticket_append(self, p, len)
    }

    fn publish(&self, p: &Participant, ticket: Ticket, root: NodeKey) -> Result<()> {
        VersionManager::publish(self, p, ticket, root)
    }

    fn is_published(&self, version: VersionId) -> Result<bool> {
        Ok(VersionManager::is_published(self, version))
    }

    fn wait_published(&self, p: &Participant, version: VersionId) -> Result<()> {
        VersionManager::wait_published(self, p, version);
        Ok(())
    }

    fn latest(&self, p: &Participant) -> Result<SnapshotRecord> {
        Ok(VersionManager::latest(self, p))
    }

    fn snapshot(&self, p: &Participant, version: VersionId) -> Result<SnapshotRecord> {
        VersionManager::snapshot(self, p, version)
    }

    fn set_retention(&self, p: &Participant, policy: RetentionPolicy) -> Result<()> {
        VersionManager::set_retention(self, p, policy)
    }

    fn lease_acquire(
        &self,
        p: &Participant,
        version: VersionId,
        ttl_ms: u64,
    ) -> Result<LeaseGrant> {
        VersionManager::lease_acquire(self, p, version, ttl_ms)
    }

    fn lease_renew(&self, p: &Participant, lease: u64, ttl_ms: u64) -> Result<LeaseGrant> {
        VersionManager::lease_renew(self, p, lease, ttl_ms)
    }

    fn lease_release(&self, p: &Participant, lease: u64) -> Result<()> {
        VersionManager::lease_release(self, p, lease)
    }

    fn gc_floor(&self, p: &Participant) -> Result<GcFloor> {
        VersionManager::gc_floor(self, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_meta::TreeConfig;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::CostModel;
    use atomio_types::ByteRange;

    #[test]
    fn in_process_manager_satisfies_the_oracle_contract() {
        let vm: Arc<dyn VersionOracle> = Arc::new(VersionManager::new(
            Arc::new(VersionHistory::new()),
            TreeConfig::new(64),
            CostModel::zero(),
            crate::TicketMode::Pipelined,
        ));
        run_actors(1, |_, p| {
            let extents = ExtentList::single(ByteRange::new(0, 64));
            let ticket = vm.ticket(p, &extents).unwrap();
            assert_eq!(ticket.version, VersionId::new(1));
            assert_eq!(vm.history().len(), 1);
            assert!(!vm.is_published(ticket.version).unwrap());
            let root = NodeKey::new(
                atomio_types::BlobId::new(0),
                ticket.version,
                ByteRange::new(0, ticket.capacity),
            );
            vm.publish(p, ticket, root).unwrap();
            vm.wait_published(p, ticket.version).unwrap();
            assert_eq!(vm.latest(p).unwrap().root, Some(root));
            assert_eq!(vm.snapshot(p, ticket.version).unwrap().size, 64);
            let (t2, ext2) = vm.ticket_append(p, 10).unwrap();
            assert_eq!(ext2.covering_range().offset, 64);
            assert_eq!(t2.version, VersionId::new(2));
        });
    }
}
