//! Microbenchmarks of the copy-on-write segment tree: metadata build and
//! snapshot resolution — the versioning backend's per-write overhead.

use atomio_meta::history::WriteSummary;
use atomio_meta::{
    LeafEntry, MetaStore, NodeKey, TreeBuilder, TreeConfig, TreeReader, VersionHistory,
};
use atomio_simgrid::{CostModel, SimClock};
use atomio_types::{BlobId, ByteRange, ChunkGeometry, ChunkId, ExtentList, ProviderId, VersionId};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

const LEAF: u64 = 4096;

struct Fixture {
    store: MetaStore,
    history: VersionHistory,
    config: TreeConfig,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            store: MetaStore::new(4, CostModel::zero()),
            history: VersionHistory::new(),
            config: TreeConfig::new(LEAF),
        }
    }

    fn entries(extents: &ExtentList, first_chunk: u64) -> Vec<LeafEntry> {
        let geo = ChunkGeometry::new(LEAF);
        geo.split_extents(extents)
            .into_iter()
            .enumerate()
            .map(|(i, span)| LeafEntry {
                file_range: span.absolute,
                chunk: ChunkId::new(first_chunk + i as u64),
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            })
            .collect()
    }

    fn register(&self, extents: &ExtentList) -> (VersionId, u64) {
        let v = VersionId::new(self.history.len() as u64 + 1);
        let cap = self
            .config
            .capacity_for(extents.covering_range().end())
            .max(self.history.capacity_of(VersionId::new(v.raw() - 1)));
        self.history.append(WriteSummary {
            version: v,
            extents: Arc::new(extents.clone()),
            capacity: cap,
        });
        (v, cap)
    }
}

fn strided_extents(regions: u64) -> ExtentList {
    ExtentList::from_ranges((0..regions).map(|i| ByteRange::new(i * 3 * LEAF, LEAF)))
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/build_update");
    for &regions in &[8u64, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(regions), &regions, |b, &n| {
            b.iter_with_setup(
                || {
                    let fx = Fixture::new();
                    let ext = strided_extents(n);
                    let (v, cap) = fx.register(&ext);
                    let entries = Fixture::entries(&ext, 0);
                    (fx, v, cap, entries)
                },
                |(fx, v, cap, entries)| {
                    let clock = SimClock::new();
                    let p = clock.register();
                    let builder =
                        TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
                    black_box(builder.build_update(&p, v, cap, &entries).unwrap());
                },
            );
        });
    }
    group.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/resolve");
    for &regions in &[8u64, 64, 256] {
        // Build once, resolve repeatedly.
        let fx = Fixture::new();
        let ext = strided_extents(regions);
        let (v, cap) = fx.register(&ext);
        let entries = Fixture::entries(&ext, 0);
        let clock = SimClock::new();
        let p = clock.register();
        let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
        let root = builder.build_update(&p, v, cap, &entries).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(regions), &regions, |b, _| {
            let reader = TreeReader::new(&fx.store);
            b.iter(|| black_box(reader.resolve(&p, Some(root), black_box(&ext)).unwrap()));
        });
    }
    group.finish();
}

fn bench_version_chain_reads(c: &mut Criterion) {
    // Measure read cost after k partial overwrites of the same leaf
    // (backlink chain traversal).
    let mut group = c.benchmark_group("tree/backlink_chain");
    for &depth in &[1u64, 8, 32] {
        let fx = Fixture::new();
        let clock = SimClock::new();
        let p = clock.register();
        let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
        let mut root = None;
        for i in 0..depth {
            // Each version writes a different 64-byte slice of leaf 0.
            let ext = ExtentList::single(ByteRange::new((i % 64) * 64, 64));
            let (v, cap) = fx.register(&ext);
            let entries = Fixture::entries(&ext, i * 10);
            root = Some(builder.build_update(&p, v, cap, &entries).unwrap());
        }
        let root = root.unwrap();
        let whole_leaf = ExtentList::single(ByteRange::new(0, LEAF));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            let reader = TreeReader::new(&fx.store);
            b.iter(|| {
                black_box(
                    reader
                        .resolve(&p, Some(root), black_box(&whole_leaf))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_node_key(c: &mut Criterion) {
    c.bench_function("tree/node_key_hash_store", |b| {
        let store = MetaStore::new(8, CostModel::zero());
        let clock = SimClock::new();
        let p = clock.register();
        let mut v = 1u64;
        b.iter(|| {
            let key = NodeKey::new(BlobId::new(0), VersionId::new(v), ByteRange::new(0, LEAF));
            v += 1;
            store
                .put(
                    &p,
                    atomio_meta::Node {
                        key,
                        body: atomio_meta::NodeBody::Inner {
                            left: None,
                            right: None,
                        },
                    },
                )
                .unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_resolve,
    bench_version_chain_reads,
    bench_node_key
);
criterion_main!(benches);
