//! Microbenchmark of the chunk-transfer engine: serial vs. pipelined
//! batch put/get through the provider manager at provider counts 1, 4,
//! and 16.
//!
//! This measures the **host CPU cost** of driving the simulation (lock
//! traffic, booking arithmetic, actor wake-ups); the simulated-time
//! comparison between the two engines is experiment E7d.

use atomio_provider::{AllocationStrategy, GetRequest, ProviderManager};
use atomio_simgrid::clock::run_actors;
use atomio_simgrid::{CostModel, FaultInjector};
use atomio_types::{ByteRange, ChunkId, ProviderId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

const CHUNKS: u64 = 32;
const CHUNK_LEN: usize = 4 * 1024;

fn fresh_manager(n: usize) -> Arc<ProviderManager> {
    Arc::new(ProviderManager::new(
        n,
        CostModel::grid5000(),
        AllocationStrategy::RoundRobin,
        Arc::new(FaultInjector::default()),
        7,
    ))
}

fn items() -> Vec<(ChunkId, Bytes)> {
    (0..CHUNKS)
        .map(|i| (ChunkId::new(i), Bytes::from(vec![0u8; CHUNK_LEN])))
        .collect()
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_put");
    for &n in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter(|| {
                let m = fresh_manager(n);
                let items = items();
                run_actors(1, |_, p| {
                    for (chunk, data) in &items {
                        m.put_replicated(p, *chunk, data, 1, 1).unwrap();
                    }
                });
            })
        });
        group.bench_with_input(BenchmarkId::new("pipelined", n), &n, |b, &n| {
            b.iter(|| {
                let m = fresh_manager(n);
                let items = items();
                run_actors(1, |_, p| {
                    let outcomes = m.put_batch_replicated(p, &items, 1, 1);
                    assert!(outcomes.iter().all(|o| o.is_ok()));
                });
            })
        });
    }
    group.finish();
}

/// Builds a loaded manager plus the read requests for its chunks.
fn loaded_manager(n: usize) -> (Arc<ProviderManager>, Vec<GetRequest>) {
    let m = fresh_manager(n);
    let items = items();
    let mc = Arc::clone(&m);
    let (mut homes, _) = run_actors(1, move |_, p| {
        mc.put_batch_replicated(p, &items, 1, 1)
            .into_iter()
            .map(|o| o.unwrap())
            .collect::<Vec<Vec<ProviderId>>>()
    });
    let requests = homes
        .pop()
        .unwrap()
        .into_iter()
        .enumerate()
        .map(|(i, homes)| GetRequest {
            chunk: ChunkId::new(i as u64),
            homes,
            range: ByteRange::new(0, CHUNK_LEN as u64),
        })
        .collect();
    (m, requests)
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_get");
    for &n in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            b.iter_with_setup(
                || loaded_manager(n),
                |(m, requests)| {
                    run_actors(1, move |_, p| {
                        for req in &requests {
                            m.get_with_failover(p, req.chunk, &req.homes, req.range)
                                .unwrap();
                        }
                    });
                },
            )
        });
        group.bench_with_input(BenchmarkId::new("pipelined", n), &n, |b, &n| {
            b.iter_with_setup(
                || loaded_manager(n),
                |(m, requests)| {
                    run_actors(1, move |_, p| {
                        let results = m.get_batch_with_failover(p, &requests);
                        assert!(results.iter().all(|r| r.is_ok()));
                    });
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get);
criterion_main!(benches);
