//! Microbenchmarks of the extent-list algebra — the hot path of every
//! request flattening, conflict check, and verifier run.

use atomio_types::{ByteRange, ExtentList};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn strided(count: u64, len: u64, stride: u64, phase: u64) -> ExtentList {
    ExtentList::from_ranges((0..count).map(|i| ByteRange::new(phase + i * stride, len)))
}

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("extent/from_ranges");
    for &n in &[16u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let raw: Vec<ByteRange> = (0..n)
                .rev()
                .map(|i| ByteRange::new(i * 100 + (i % 7) * 3, 60))
                .collect();
            b.iter(|| ExtentList::from_ranges(black_box(raw.iter().copied())));
        });
    }
    group.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("extent/set_ops");
    for &n in &[64u64, 1024] {
        let a = strided(n, 80, 128, 0);
        let b = strided(n, 80, 128, 64);
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).union(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("intersection", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).intersection(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("subtract", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).subtract(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("overlaps", n), &n, |bench, _| {
            bench.iter(|| black_box(&a).overlaps(black_box(&b)));
        });
    }
    group.finish();
}

fn bench_contains(c: &mut Criterion) {
    let list = strided(4096, 60, 100, 0);
    c.bench_function("extent/contains_4096_ranges", |b| {
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 997) % 409_600;
            black_box(list.contains(black_box(pos)))
        });
    });
}

criterion_group!(benches, bench_normalize, bench_set_ops, bench_contains);
criterion_main!(benches);
