//! Microbenchmarks of the atomicity verifier: segmentation, attribution,
//! and witness search as writer count and fragmentation grow.

use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use atomio_workloads::verify::{check_serializable, replay, WriteRecord};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn overlapping_writes(writers: usize, regions: u64, region: u64) -> Vec<WriteRecord> {
    let step = region / 2; // 50% neighbour overlap
    (0..writers)
        .map(|w| {
            let extents = ExtentList::from_ranges(
                (0..regions)
                    .map(|k| ByteRange::new((k * writers as u64 + w as u64) * step, region)),
            );
            WriteRecord::new(WriteStamp::new(ClientId::new(w as u64), 0), extents)
        })
        .collect()
}

fn bench_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier/check_serializable");
    for &(writers, regions) in &[(4usize, 8u64), (16, 16), (32, 32)] {
        let writes = overlapping_writes(writers, regions, 4096);
        let order: Vec<usize> = (0..writes.len()).collect();
        let end = writes
            .iter()
            .map(|w| w.extents.covering_range().end())
            .max()
            .unwrap();
        let state = replay(end as usize, &writes, &order);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{writers}w_{regions}r")),
            &writes,
            |b, writes| {
                b.iter(|| black_box(check_serializable(black_box(&state), writes).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let writes = overlapping_writes(16, 16, 4096);
    let order: Vec<usize> = (0..writes.len()).collect();
    let end = writes
        .iter()
        .map(|w| w.extents.covering_range().end())
        .max()
        .unwrap();
    c.bench_function("verifier/replay_16w_16r", |b| {
        b.iter(|| black_box(replay(end as usize, black_box(&writes), &order)));
    });
}

criterion_group!(benches, bench_check, bench_replay);
criterion_main!(benches);
