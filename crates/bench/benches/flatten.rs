//! Microbenchmarks of MPI datatype flattening and view resolution — the
//! ROMIO-side cost of non-contiguous access.

use atomio_mpiio::{Datatype, FileView};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_flatten(c: &mut Criterion) {
    let mut group = c.benchmark_group("datatype/flatten");

    for &rows in &[64u64, 256, 1024] {
        let tile = Datatype::bytes(32)
            .unwrap()
            .subarray(&[rows * 2, rows * 2], &[rows, rows], &[rows / 2, rows / 2])
            .unwrap();
        group.bench_with_input(BenchmarkId::new("subarray", rows), &rows, |b, _| {
            b.iter(|| black_box(&tile).flatten());
        });
    }

    for &count in &[64u64, 1024] {
        let vec = Datatype::double().vector(count, 4, 16).unwrap();
        group.bench_with_input(BenchmarkId::new("vector", count), &count, |b, _| {
            b.iter(|| black_box(&vec).flatten());
        });
    }

    let blocks: Vec<(u64, u64)> = (0..512).map(|i| (i * 10, 3)).collect();
    let indexed = Datatype::bytes(8).unwrap().indexed(&blocks).unwrap();
    group.bench_function("indexed_512", |b| {
        b.iter(|| black_box(&indexed).flatten());
    });
    group.finish();
}

fn bench_view_extents(c: &mut Criterion) {
    let mut group = c.benchmark_group("view/extents_for");
    // Block-cyclic view: 4 KiB mine, 60 KiB others, repeated.
    let ft = Datatype::bytes(4096).unwrap().resized(65536).unwrap();
    let view = FileView::new(0, 4096, ft).unwrap();
    for &tiles in &[16u64, 256] {
        group.bench_with_input(BenchmarkId::new("block_cyclic", tiles), &tiles, |b, &n| {
            b.iter(|| black_box(view.extents_for(black_box(0), black_box(n * 4096)).unwrap()));
        });
    }
    // Tile view (mpi-tile-io shape).
    let tile_ft = Datatype::bytes(32)
        .unwrap()
        .subarray(&[512, 512], &[256, 256], &[128, 128])
        .unwrap();
    let tile_view = FileView::new(0, 32, tile_ft).unwrap();
    let tile_bytes = 256 * 256 * 32;
    group.bench_function("tile_256x256", |b| {
        b.iter(|| {
            black_box(
                tile_view
                    .extents_for(black_box(0), black_box(tile_bytes))
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_flatten, bench_view_extents);
criterion_main!(benches);
