//! Microbenchmarks of the distributed lock manager: grant/release cost
//! and conflict-scan behaviour under a populated lock table.

use atomio_pfs::{LockKind, LockManager};
use atomio_simgrid::{CostModel, Metrics, SimClock};
use atomio_types::{ByteRange, ClientId};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_uncontended(c: &mut Criterion) {
    c.bench_function("dlm/lock_unlock_uncontended", |b| {
        let m = LockManager::new(CostModel::zero(), Metrics::new());
        let clock = SimClock::new();
        let p = clock.register();
        b.iter(|| {
            let h = m.lock(
                &p,
                ClientId::new(0),
                black_box(ByteRange::new(0, 4096)),
                LockKind::Exclusive,
            );
            m.unlock(&p, h);
        });
    });
}

fn bench_populated_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlm/grant_with_table");
    for &held in &[16usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(held), &held, |b, &held| {
            let m = LockManager::new(CostModel::zero(), Metrics::new());
            let clock = SimClock::new();
            let p = clock.register();
            // Populate with `held` disjoint shared locks.
            let handles: Vec<_> = (0..held)
                .map(|i| {
                    m.lock(
                        &p,
                        ClientId::new(i as u64),
                        ByteRange::new(i as u64 * 10_000, 4096),
                        LockKind::Shared,
                    )
                })
                .collect();
            // Time the conflict scan for a disjoint newcomer.
            let far = ByteRange::new(held as u64 * 10_000 + 100_000, 64);
            b.iter(|| {
                let h = m.lock(&p, ClientId::new(9999), black_box(far), LockKind::Exclusive);
                m.unlock(&p, h);
            });
            for h in handles {
                m.unlock(&p, h);
            }
        });
    }
    group.finish();
}

fn bench_shared_reacquire(c: &mut Criterion) {
    c.bench_function("dlm/shared_overlapping_locks", |b| {
        let m = LockManager::new(CostModel::zero(), Metrics::new());
        let clock = SimClock::new();
        let p = clock.register();
        b.iter(|| {
            let h1 = m.lock(
                &p,
                ClientId::new(0),
                ByteRange::new(0, 1 << 20),
                LockKind::Shared,
            );
            let h2 = m.lock(
                &p,
                ClientId::new(1),
                ByteRange::new(0, 1 << 20),
                LockKind::Shared,
            );
            m.unlock(&p, h1);
            m.unlock(&p, h2);
        });
    });
}

criterion_group!(
    benches,
    bench_uncontended,
    bench_populated_table,
    bench_shared_reacquire
);
criterion_main!(benches);
