//! # atomio-bench
//!
//! The experiment harness: shared backend setup, measurement plumbing,
//! and report formatting for the paper-reproduction experiments E1–E8
//! (see `DESIGN.md` §7 and `EXPERIMENTS.md`). One binary per experiment
//! lives in `src/bin/`; criterion microbenches live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;
pub mod setup;

pub use report::{ExperimentReport, Row};
pub use setup::{Backend, BenchConfig};
