//! Experiment records and report rendering.
//!
//! Every experiment binary produces an [`ExperimentReport`]: a table of
//! rows (one per configuration × backend) printed as an aligned text
//! table and dumped as JSON under `results/` so `EXPERIMENTS.md` can
//! reference machine-readable outputs.

use atomio_provider::ProviderManager;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// The sweep variable, e.g. client count or overlap percent.
    pub x: u64,
    /// Backend label.
    pub backend: String,
    /// Aggregated throughput, MiB per simulated second.
    pub throughput_mib_s: f64,
    /// Virtual time of the round, seconds.
    pub elapsed_s: f64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Whether the round's final state passed the atomicity verifier
    /// (`None` when verification was skipped).
    pub atomic_ok: Option<bool>,
}

/// Utilization of one simulated device (a provider NIC or disk, a
/// client NIC) over an experiment run: where the virtual time went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Device name, e.g. `"p3/disk"` or `"client0/nic"`.
    pub name: String,
    /// Total service time charged, simulated seconds.
    pub busy_s: f64,
    /// Total queueing delay experienced by requests, simulated seconds.
    pub queue_s: f64,
    /// Requests served.
    pub requests: u64,
}

/// One named scalar statistic attached to a report — counter-style
/// bookkeeping that is not a sweep row, e.g. the per-RPC transport
/// counters (`rpc.messages`, `rpc.bytes_tx`, ...).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatEntry {
    /// Stat name, e.g. `"rpc.messages"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A complete experiment result.
///
/// `Serialize`/`Deserialize` are hand-written (not derived) so the
/// `stats` section is omitted when empty: reports that never collect
/// counters keep their committed JSON byte-identical across schema
/// additions.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id ("E1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the sweep variable (for the table header).
    pub x_label: String,
    /// The measured rows.
    pub rows: Vec<Row>,
    /// Free-form notes (parameters, cost model, observations).
    pub notes: Vec<String>,
    /// Per-device utilization of a representative run (empty when not
    /// collected).
    pub resources: Vec<ResourceUsage>,
    /// Named counters from a representative run (empty when not
    /// collected) — e.g. wire-transport message/byte/retry totals.
    pub stats: Vec<StatEntry>,
}

impl Serialize for ExperimentReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("id".to_owned(), self.id.to_value()),
            ("title".to_owned(), self.title.to_value()),
            ("x_label".to_owned(), self.x_label.to_value()),
            ("rows".to_owned(), self.rows.to_value()),
            ("notes".to_owned(), self.notes.to_value()),
            ("resources".to_owned(), self.resources.to_value()),
        ];
        if !self.stats.is_empty() {
            fields.push(("stats".to_owned(), self.stats.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ExperimentReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(ExperimentReport {
            id: Deserialize::from_value(v.get_or_null("id"))?,
            title: Deserialize::from_value(v.get_or_null("title"))?,
            x_label: Deserialize::from_value(v.get_or_null("x_label"))?,
            rows: Deserialize::from_value(v.get_or_null("rows"))?,
            notes: Deserialize::from_value(v.get_or_null("notes"))?,
            resources: Deserialize::from_value(v.get_or_null("resources"))?,
            stats: Deserialize::from_value(v.get_or_null("stats"))?,
        })
    }
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, x_label: &str) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            rows: Vec::new(),
            notes: Vec::new(),
            resources: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Records a named counter (overwrites an existing entry with the
    /// same name so re-measured runs don't accumulate duplicates).
    pub fn stat(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.stats.iter_mut().find(|s| s.name == name) {
            Some(s) => s.value = value,
            None => self.stats.push(StatEntry { name, value }),
        }
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Speedup of `numerator` over `denominator` at sweep point `x`
    /// (ratio of throughputs), if both rows exist.
    pub fn speedup_at(&self, x: u64, numerator: &str, denominator: &str) -> Option<f64> {
        let get = |name: &str| {
            self.rows
                .iter()
                .find(|r| r.x == x && r.backend == name)
                .map(|r| r.throughput_mib_s)
        };
        match (get(numerator), get(denominator)) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// All distinct sweep points, in order of first appearance.
    pub fn xs(&self) -> Vec<u64> {
        let mut xs = Vec::new();
        for r in &self.rows {
            if !xs.contains(&r.x) {
                xs.push(r.x);
            }
        }
        xs
    }

    /// All distinct backends, in order of first appearance.
    pub fn backends(&self) -> Vec<String> {
        let mut bs = Vec::new();
        for r in &self.rows {
            if !bs.contains(&r.backend) {
                bs.push(r.backend.clone());
            }
        }
        bs
    }

    /// Renders the aligned text table: one line per sweep point, one
    /// throughput column per backend.
    pub fn render_table(&self) -> String {
        let backends = self.backends();
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for note in &self.notes {
            let _ = writeln!(out, "   {note}");
        }
        let _ = write!(out, "{:>12} |", self.x_label);
        for b in &backends {
            let _ = write!(out, " {b:>22} |");
        }
        let _ = writeln!(out, "  (MiB/s, simulated)");
        let width = 14 + backends.len() * 25;
        let _ = writeln!(out, "{}", "-".repeat(width));
        for x in self.xs() {
            let _ = write!(out, "{x:>12} |");
            for b in &backends {
                match self.rows.iter().find(|r| r.x == x && r.backend == *b) {
                    Some(r) => {
                        let atomicity = match r.atomic_ok {
                            Some(true) => " ok",
                            Some(false) => " VIOLATED",
                            None => "",
                        };
                        let _ = write!(out, " {:>13.1}{atomicity:<9} |", r.throughput_mib_s);
                    }
                    None => {
                        let _ = write!(out, " {:>22} |", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if !self.resources.is_empty() {
            let _ = writeln!(out, "-- device utilization (representative run) --");
            let _ = writeln!(
                out,
                "{:>14} | {:>10} | {:>10} | {:>8}",
                "device", "busy s", "queued s", "requests"
            );
            for r in &self.resources {
                let _ = writeln!(
                    out,
                    "{:>14} | {:>10.4} | {:>10.4} | {:>8}",
                    r.name, r.busy_s, r.queue_s, r.requests
                );
            }
        }
        if !self.stats.is_empty() {
            let _ = writeln!(out, "-- counters (representative run) --");
            for s in &self.stats {
                let _ = writeln!(out, "{:>20} | {:>12}", s.name, s.value);
            }
        }
        out
    }

    /// Writes the report as pretty JSON under `dir` (created if needed)
    /// and returns the path.
    pub fn save_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(self).expect("serializable"),
        )?;
        Ok(path)
    }
}

/// Collects [`ResourceUsage`] for every provider NIC and disk in a
/// fleet, plus the per-client NICs of the pipelined transfer engine,
/// skipping devices that never served a request.
pub fn provider_resource_usage(providers: &ProviderManager) -> Vec<ResourceUsage> {
    let usage_of = |dev: &atomio_simgrid::Resource| ResourceUsage {
        name: dev.name().to_owned(),
        busy_s: dev.busy_time().as_secs_f64(),
        queue_s: dev.total_queue_delay().as_secs_f64(),
        requests: dev.request_count(),
    };
    let mut out = Vec::new();
    for prov in providers.providers() {
        for dev in [prov.nic(), prov.disk()] {
            if dev.request_count() > 0 {
                out.push(usage_of(dev));
            }
        }
    }
    for nic in providers.client_nics() {
        if nic.request_count() > 0 {
            out.push(usage_of(&nic));
        }
    }
    out
}

/// Extracts the wire-transport counters (`rpc.*` namespace — messages,
/// bytes on the wire in each direction, connect retries) from a metrics
/// registry, sorted by name. Empty when the run never touched an RPC
/// transport (the in-process fast path doesn't count messages).
pub fn rpc_counter_stats(metrics: &atomio_simgrid::Metrics) -> Vec<StatEntry> {
    let mut out: Vec<StatEntry> = metrics
        .counter_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("rpc."))
        .map(|(name, value)| StatEntry { name, value })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Extracts the write-ahead-log statistics (`wal.*` namespace) from a
/// metrics registry as flat entries, sorted by name. Counters pass
/// through; duration stats flatten to `_mean_us`/`_max_us` microsecond
/// entries and value stats to `_mean`/`_peak`, keeping the report's
/// `stats` block a uniform name→u64 table. Empty when the run never
/// used a WAL — Direct-mode reports (e7a–e and earlier) stay
/// byte-identical.
pub fn wal_stat_entries(metrics: &atomio_simgrid::Metrics) -> Vec<StatEntry> {
    namespaced_stat_entries(metrics, "wal.")
}

/// Extracts the reclamation statistics (`gc.*` namespace — passes,
/// versions retired, chunks/nodes evicted, bytes reclaimed, pass times,
/// live-lease gauge) from a metrics registry, flattened exactly like
/// [`wal_stat_entries`]. Empty when the run never ran a collector, so
/// GC-less reports (everything before E10) stay byte-identical.
pub fn gc_stat_entries(metrics: &atomio_simgrid::Metrics) -> Vec<StatEntry> {
    namespaced_stat_entries(metrics, "gc.")
}

fn namespaced_stat_entries(metrics: &atomio_simgrid::Metrics, prefix: &str) -> Vec<StatEntry> {
    let mut out: Vec<StatEntry> = metrics
        .counter_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, value)| StatEntry { name, value })
        .collect();
    for (name, sum, count, max) in metrics.time_snapshot() {
        if !name.starts_with(prefix) || count == 0 {
            continue;
        }
        out.push(StatEntry {
            name: format!("{name}_mean_us"),
            value: (sum.as_micros() as u64) / count,
        });
        out.push(StatEntry {
            name: format!("{name}_max_us"),
            value: max.as_micros() as u64,
        });
    }
    for (name, sum, count, max) in metrics.value_snapshot() {
        if !name.starts_with(prefix) || count == 0 {
            continue;
        }
        out.push(StatEntry {
            name: format!("{name}_mean"),
            value: sum / count,
        });
        out.push(StatEntry {
            name: format!("{name}_peak"),
            value: max,
        });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// The conventional output directory for experiment JSON.
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("ATOMIO_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("E9", "sample", "clients");
        r.push(Row {
            x: 1,
            backend: "versioning".into(),
            throughput_mib_s: 100.0,
            elapsed_s: 1.0,
            bytes: 1 << 20,
            atomic_ok: Some(true),
        });
        r.push(Row {
            x: 1,
            backend: "lustre-lock".into(),
            throughput_mib_s: 25.0,
            elapsed_s: 4.0,
            bytes: 1 << 20,
            atomic_ok: Some(true),
        });
        r.push(Row {
            x: 8,
            backend: "versioning".into(),
            throughput_mib_s: 400.0,
            elapsed_s: 1.0,
            bytes: 8 << 20,
            atomic_ok: None,
        });
        r
    }

    #[test]
    fn speedup_computation() {
        let r = sample();
        assert_eq!(r.speedup_at(1, "versioning", "lustre-lock"), Some(4.0));
        assert_eq!(r.speedup_at(8, "versioning", "lustre-lock"), None);
        assert_eq!(r.speedup_at(1, "versioning", "nope"), None);
    }

    #[test]
    fn table_lists_all_points() {
        let r = sample();
        let table = r.render_table();
        assert!(table.contains("E9"));
        assert!(table.contains("versioning"));
        assert!(table.contains("lustre-lock"));
        assert!(table.contains("100.0"));
        assert!(table.contains("400.0"));
        assert!(table.contains('-'), "missing cell placeholder");
    }

    #[test]
    fn xs_and_backends_preserve_order() {
        let r = sample();
        assert_eq!(r.xs(), vec![1, 8]);
        assert_eq!(r.backends(), vec!["versioning", "lustre-lock"]);
    }

    #[test]
    fn resource_section_renders_and_roundtrips() {
        let mut r = sample();
        r.resources.push(ResourceUsage {
            name: "p0/disk".into(),
            busy_s: 1.25,
            queue_s: 0.5,
            requests: 64,
        });
        let table = r.render_table();
        assert!(table.contains("device utilization"));
        assert!(table.contains("p0/disk"));
        let json = serde_json::to_string_pretty(&r).unwrap();
        let loaded: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(loaded.resources.len(), 1);
        assert_eq!(loaded.resources[0].requests, 64);
    }

    #[test]
    fn reports_without_resources_still_parse() {
        // Committed results predate the resources and stats sections;
        // they must keep loading (the fields default to empty).
        let json = r#"{
            "id": "E0", "title": "t", "x_label": "x",
            "rows": [], "notes": []
        }"#;
        let loaded: ExperimentReport = serde_json::from_str(json).unwrap();
        assert!(loaded.resources.is_empty());
        assert!(loaded.stats.is_empty());
        let table = loaded.render_table();
        assert!(!table.contains("device utilization"));
        assert!(!table.contains("counters"));
    }

    #[test]
    fn stats_render_roundtrip_and_overwrite() {
        let mut r = sample();
        r.stat("rpc.messages", 10);
        r.stat("rpc.bytes_tx", 4096);
        r.stat("rpc.messages", 12); // re-measured: overwrite, not append
        assert_eq!(r.stats.len(), 2);
        let table = r.render_table();
        assert!(table.contains("counters"));
        assert!(table.contains("rpc.messages"));
        assert!(table.contains("12"));
        let json = serde_json::to_string_pretty(&r).unwrap();
        let loaded: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(loaded.stats.len(), 2);
        assert_eq!(
            loaded
                .stats
                .iter()
                .find(|s| s.name == "rpc.messages")
                .map(|s| s.value),
            Some(12)
        );
    }

    #[test]
    fn rpc_counter_stats_filters_and_sorts() {
        let metrics = atomio_simgrid::Metrics::new();
        metrics.counter("rpc.messages").add(3);
        metrics.counter("rpc.bytes_tx").add(100);
        metrics.counter("core.unrelated").add(9);
        let stats = rpc_counter_stats(&metrics);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "rpc.bytes_tx");
        assert_eq!(stats[1].name, "rpc.messages");
    }

    #[test]
    fn wal_stat_entries_flatten_and_filter() {
        let metrics = atomio_simgrid::Metrics::new();
        metrics.counter("wal.appends").add(7);
        metrics.counter("core.writes").add(9); // filtered out
        metrics
            .time_stat("wal.append_time")
            .record(std::time::Duration::from_micros(40));
        metrics
            .time_stat("wal.append_time")
            .record(std::time::Duration::from_micros(20));
        metrics.value_stat("wal.bytes_pending").record(1000);
        metrics.value_stat("wal.bytes_pending").record(3000);
        let stats = wal_stat_entries(&metrics);
        let get = |n: &str| stats.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("wal.appends"), Some(7));
        assert_eq!(get("wal.append_time_mean_us"), Some(30));
        assert_eq!(get("wal.append_time_max_us"), Some(40));
        assert_eq!(get("wal.bytes_pending_mean"), Some(2000));
        assert_eq!(get("wal.bytes_pending_peak"), Some(3000));
        assert!(get("core.writes").is_none());
        let names: Vec<&str> = stats.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "entries sorted by name");
        // A WAL-less run contributes nothing: empty-stats omission keeps
        // committed Direct-mode reports byte-identical.
        assert!(wal_stat_entries(&atomio_simgrid::Metrics::new()).is_empty());
    }

    #[test]
    fn gc_stat_entries_share_the_wal_flattening() {
        let metrics = atomio_simgrid::Metrics::new();
        metrics.counter("gc.versions_retired").add(5);
        metrics.counter("gc.bytes_reclaimed").add(4096);
        metrics.counter("wal.appends").add(2); // other namespace
        metrics
            .time_stat("gc.pass_time")
            .record(std::time::Duration::from_micros(80));
        metrics.value_stat("gc.leases_active").record(3);
        let stats = gc_stat_entries(&metrics);
        let get = |n: &str| stats.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("gc.versions_retired"), Some(5));
        assert_eq!(get("gc.bytes_reclaimed"), Some(4096));
        assert_eq!(get("gc.pass_time_mean_us"), Some(80));
        assert_eq!(get("gc.pass_time_max_us"), Some(80));
        assert_eq!(get("gc.leases_active_peak"), Some(3));
        assert!(get("wal.appends").is_none());
        // A GC-less run contributes nothing: empty-stats omission keeps
        // every committed pre-E10 report byte-identical.
        assert!(gc_stat_entries(&atomio_simgrid::Metrics::new()).is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join(format!("atomio-test-{}", std::process::id()));
        let r = sample();
        let path = r.save_json(&dir).unwrap();
        let loaded: ExperimentReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded.rows.len(), r.rows.len());
        assert_eq!(loaded.id, "E9");
        std::fs::remove_dir_all(&dir).ok();
    }
}
