//! E6 — read scalability on a published snapshot, with and without a
//! concurrent writer.
//!
//! Versioned reads are lock-free and target an immutable snapshot, so a
//! concurrent writer cannot disturb them. The locking baseline's readers
//! take shared covering locks: they coexist with each other, but an
//! atomic-mode writer excludes them wholesale.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp6_read_scalability`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::{ClientId, ExtentList};
use atomio_workloads::OverlapWorkload;
use bytes::Bytes;
use std::sync::atomic::Ordering;

fn main() {
    let cfg = BenchConfig::default();
    const DATA: u64 = 64 * 1024 * 1024;

    for with_writer in [false, true] {
        let id = if with_writer { "E6b" } else { "E6a" };
        let title = if with_writer {
            "read throughput vs. readers, with one concurrent atomic writer"
        } else {
            "read throughput vs. readers, quiescent file"
        };
        let mut report = ExperimentReport::new(id, title, "readers");
        report.note(format!(
            "64 MiB file, each reader reads 16 x 512 KiB regions; {} servers",
            cfg.servers
        ));

        for &readers in &[1usize, 2, 4, 8, 16, 32] {
            for backend in [Backend::Versioning, Backend::LustreLock] {
                let (driver, _) = cfg.build(backend);
                let clock = SimClock::new();
                // Pre-populate the file.
                run_actors_on(&clock, 1, |_, p| {
                    driver
                        .write_extents(
                            p,
                            ClientId::new(999),
                            &ExtentList::from_pairs([(0u64, DATA)]),
                            Bytes::from(vec![0x5Au8; DATA as usize]),
                            false,
                        )
                        .expect("populate");
                });

                // Readers: each reads a strided non-contiguous set.
                let workload = OverlapWorkload::new(readers.max(1), 16, 512 * 1024, 0, 2);
                let finished = std::sync::atomic::AtomicUsize::new(0);
                let start = clock.now();
                let total_bytes = std::sync::atomic::AtomicU64::new(0);
                run_actors_on(&clock, readers + usize::from(with_writer), |i, p| {
                    if with_writer && i == readers {
                        // Background writer: repeated atomic writes until
                        // every reader has finished.
                        let wext = ExtentList::from_pairs([(0u64, 4 * 1024 * 1024)]);
                        while finished.load(Ordering::SeqCst) < readers {
                            driver
                                .write_extents(
                                    p,
                                    ClientId::new(1000),
                                    &wext,
                                    Bytes::from(vec![1u8; 4 * 1024 * 1024]),
                                    true,
                                )
                                .expect("bg write");
                        }
                        return;
                    }
                    let ext = workload
                        .extents_for(i)
                        .clip(atomio_types::ByteRange::new(0, DATA));
                    for _ in 0..2 {
                        let got = driver
                            .read_extents(p, ClientId::new(i as u64), &ext, true)
                            .expect("read");
                        total_bytes.fetch_add(got.len() as u64, Ordering::Relaxed);
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                });
                let elapsed = clock.now() - start;
                let bytes = total_bytes.load(Ordering::Relaxed);
                report.push(Row {
                    x: readers as u64,
                    backend: backend.label().to_owned(),
                    throughput_mib_s: bytes as f64
                        / (1024.0 * 1024.0)
                        / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
                    elapsed_s: elapsed.as_secs_f64(),
                    bytes,
                    atomic_ok: None,
                });
            }
            eprintln!("  ... {readers} readers (writer={with_writer}) done");
        }

        for x in report.xs() {
            if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
                report.note(format!("speedup vs lustre-lock at {x:>3} readers: {s:.2}x"));
            }
        }
        println!("{}", report.render_table());
        match report.save_json(atomio_bench::report::results_dir()) {
            Ok(path) => println!("saved {}", path.display()),
            Err(e) => eprintln!("could not save JSON: {e}"),
        }
    }
}
