//! E10 — extension: client-side metadata caching.
//!
//! Immutable tree nodes are cacheable forever — no invalidation
//! protocol, one of the quiet payoffs of shadowing. This experiment
//! measures read throughput with the cache on vs. off as readers re-read
//! a snapshot (the visualization pattern: pan/zoom over the same
//! dataset).
//!
//! Run: `cargo run -p atomio-bench --release --bin exp10_meta_cache`

use atomio_bench::{ExperimentReport, Row};
use atomio_core::{ReadVersion, Store, StoreConfig};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::{ByteRange, ExtentList};
use bytes::Bytes;

fn main() {
    const DATA: u64 = 32 * 1024 * 1024;
    const PASSES: usize = 4;

    let mut report = ExperimentReport::new(
        "E10mc",
        "client metadata cache: repeated snapshot reads (32 MiB, 4 passes)",
        "readers",
    );
    report.note("each reader scans the same snapshot 4 times in 512 KiB strided regions");

    for &readers in &[1usize, 4, 16] {
        for (label, cache_nodes) in [("cache-on", 65536usize), ("cache-off", 0usize)] {
            let store = Store::new(
                StoreConfig::default()
                    .with_data_providers(16)
                    .with_chunk_size(256 * 1024)
                    .with_meta_cache(cache_nodes),
            );
            let blob = store.create_blob();
            let clock = SimClock::new();
            // Populate.
            run_actors_on(&clock, 1, |_, p| {
                blob.write(p, 0, Bytes::from(vec![0xCDu8; DATA as usize]))
                    .unwrap();
            });
            let start = clock.now();
            let total_bytes = std::sync::atomic::AtomicU64::new(0);
            run_actors_on(&clock, readers, |i, p| {
                // Reader i scans its strided slice of the snapshot.
                let ext = ExtentList::from_ranges((0..16u64).map(|k| {
                    ByteRange::new(
                        ((k * readers as u64 + i as u64) * 512 * 1024) % (DATA - 512 * 1024),
                        512 * 1024,
                    )
                }))
                .clip(ByteRange::new(0, DATA));
                for _ in 0..PASSES {
                    let got = blob.read_list(p, ReadVersion::Latest, &ext).unwrap();
                    total_bytes.fetch_add(got.len() as u64, std::sync::atomic::Ordering::Relaxed);
                }
            });
            let elapsed = clock.now() - start;
            let bytes = total_bytes.load(std::sync::atomic::Ordering::Relaxed);
            if let Some(cache) = blob.node_cache() {
                report.note(format!(
                    "{label} @ {readers} readers: node-cache hit rate {:.1}%",
                    cache.hit_rate() * 100.0
                ));
            }
            report.push(Row {
                x: readers as u64,
                backend: label.into(),
                throughput_mib_s: bytes as f64
                    / (1024.0 * 1024.0)
                    / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
                elapsed_s: elapsed.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
        }
        eprintln!("  ... {readers} readers done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "cache-on", "cache-off") {
            report.note(format!("cache gain at {x:>3} readers: {s:.2}x"));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
