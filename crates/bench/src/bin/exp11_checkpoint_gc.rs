//! E11ck — extension: the storage cost of versioning under iterative
//! checkpointing, and what garbage collection buys back.
//!
//! Versioning never overwrites, so an application that checkpoints every
//! iteration grows the store linearly — the flip side of lock-free
//! atomicity that the paper defers to future work. This experiment runs
//! 8 checkpoint iterations (4 ranks, halo-overlapped slabs), tracks
//! stored bytes per iteration, then collects all but the last two
//! snapshots.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp11_checkpoint_gc`

use atomio_bench::BenchConfig;
use atomio_core::gc::collect_below;
use atomio_core::{Store, StoreConfig};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ClientId, VersionId};
use atomio_workloads::CheckpointWorkload;
use bytes::Bytes;

fn main() {
    let cfg = BenchConfig::default();
    let store = Store::new(
        StoreConfig::default()
            .with_cost(cfg.cost)
            .with_chunk_size(cfg.chunk_size)
            .with_data_providers(cfg.servers)
            .with_meta_shards(cfg.meta_shards),
    );
    let blob = store.create_blob();
    let workload = CheckpointWorkload::new(4, 512 * 1024, 8, 16 * 1024);
    let clock = SimClock::new();
    const ITERS: u64 = 8;

    println!("== E11ck — checkpoint iterations: storage growth and GC ==");
    println!(
        "   4 ranks x {} MiB slabs (+{} KiB halos), {} iterations\n",
        workload.cells_per_rank * workload.cell_size / (1024 * 1024),
        workload.halo * workload.cell_size / 1024,
        ITERS
    );
    println!(
        "{:>10} {:>14} {:>16} {:>14}",
        "iteration", "version", "stored (MiB)", "MiB/s (sim)"
    );

    let payload_per_iter: u64 = (0..workload.ranks).map(|r| workload.bytes_for(r)).sum();
    let mut last_version = VersionId::INITIAL;
    for iter in 0..ITERS {
        let start = clock.now();
        let versions = run_actors_on(&clock, workload.ranks, |rank, p| {
            let ext = workload.extents_for(rank);
            let stamp = WriteStamp::new(ClientId::new(rank as u64), iter);
            blob.write_list(p, &ext, Bytes::from(stamp.payload_for(&ext)))
                .unwrap()
        });
        let elapsed = clock.now() - start;
        last_version = *versions.iter().max().unwrap();
        let stored: u64 = store
            .providers()
            .providers()
            .iter()
            .map(|pr| pr.bytes_stored())
            .sum();
        println!(
            "{:>10} {:>14} {:>16.1} {:>14.1}",
            iter,
            last_version.to_string(),
            stored as f64 / (1024.0 * 1024.0),
            payload_per_iter as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64()
        );
    }

    // Collect everything below the second-to-last iteration's snapshots.
    let keep_from = VersionId::new(
        last_version
            .raw()
            .saturating_sub(2 * workload.ranks as u64 - 1),
    );
    let report = run_actors_on(&clock, 1, |_, p| {
        collect_below(p, &blob, keep_from).unwrap()
    })
    .pop()
    .unwrap();
    let stored_after: u64 = store
        .providers()
        .providers()
        .iter()
        .map(|pr| pr.bytes_stored())
        .sum();
    println!(
        "\nGC below {}: retired {} versions, evicted {} chunks / {} tree nodes, reclaimed {:.1} MiB",
        keep_from,
        report.versions_retired,
        report.chunks_evicted,
        report.nodes_evicted,
        report.bytes_reclaimed as f64 / (1024.0 * 1024.0)
    );
    println!(
        "stored after GC: {:.1} MiB (last two iterations retained)",
        stored_after as f64 / (1024.0 * 1024.0)
    );

    // Retained snapshots still read bit-exact.
    run_actors_on(&clock, 1, |_, p| {
        for rank in 0..workload.ranks {
            let ext = workload.extents_for(rank);
            let got = blob.read_at(p, last_version, &ext).unwrap();
            let interior_stamp = WriteStamp::new(ClientId::new(rank as u64), ITERS - 1);
            // The slab interior (outside halos) belongs to this rank's
            // final iteration.
            let lo = (rank as u64 * workload.cells_per_rank + workload.halo) * workload.cell_size;
            let span = ext.covering_range();
            let off_in_buf = (lo - span.offset) as usize;
            let len = ((workload.cells_per_rank - 2 * workload.halo) * workload.cell_size) as usize;
            assert!(
                interior_stamp.matches(lo, &got[off_in_buf..off_in_buf + len]),
                "rank {rank} final interior corrupted after GC"
            );
        }
    });
    println!("post-GC verification: latest snapshot bit-exact");
}
