//! E7 — ablations of the versioning backend's design choices:
//!
//! * **Striping factor** — aggregated throughput vs. number of data
//!   providers (the paper's *data striping* principle);
//! * **Publication pipeline** — BlobSeer-style pipelined ticket/publish
//!   vs. naive serialized metadata builds (the *versioning without
//!   waiting* principle);
//! * **Allocation strategy** — round-robin vs. least-loaded vs. random
//!   chunk placement;
//! * **Transfer engine** — pipelined batched chunk transfers vs. one
//!   chunk at a time (the reservation engine of `DESIGN.md` §4);
//! * **Metadata commit engine** — batched shard-parallel node commits
//!   vs. one node put at a time (`DESIGN.md` §4);
//! * **Metadata read path** — one batched fetch per tree level vs. a
//!   per-node walk, plus wire-transport accounting of the same workload
//!   through the RPC codec;
//! * **Socket transport** — multiplexed connection-pool transport vs.
//!   strict per-call framing over real localhost TCP (`DESIGN.md` §5).
//!   E7g is the one arm measured in **wall-clock** time on real sockets
//!   rather than simulated time, so its absolute numbers vary run to
//!   run; the per-call vs. mux *ratio* is the result. The provider
//!   behind it charges a 100 µs wall-clock device write per chunk
//!   ([`TimedProviderService`]) so the arm measures request *overlap* —
//!   the thing multiplexing buys — rather than codec microseconds.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp7_ablation`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_core::{MetaCommitMode, MetaReadMode, ReadVersion, Store, StoreConfig, TransferMode};
use atomio_mpiio::adio::AdioDriver;
use atomio_mpiio::drivers::VersioningDriver;
use atomio_provider::{AllocationStrategy, ChunkStore, ProviderManager};
use atomio_rpc::{
    dial, Loopback, MetaService, ProviderService, RemoteMetaStore, RemoteProvider, RpcConfig,
    RpcMode, RpcServer,
};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::{FaultInjector, Metrics, SimClock};
use atomio_types::{ChunkId, ExtentList, ProviderId};
use atomio_version::TicketMode;
use atomio_workloads::{run_write_round, OverlapWorkload};
use bytes::Bytes;
use std::sync::Arc;

const CLIENTS: usize = 16;

fn workload_extents() -> Vec<ExtentList> {
    let w = OverlapWorkload::new(CLIENTS, 32, 256 * 1024, 1, 2);
    (0..CLIENTS).map(|c| w.extents_for(c)).collect()
}

fn measure(driver: Arc<dyn AdioDriver>, extents: &[ExtentList]) -> (f64, f64, u64) {
    let clock = SimClock::new();
    let out = run_write_round(&clock, &driver, extents, true, 1, false);
    (
        out.throughput_mib_s(),
        out.elapsed.as_secs_f64(),
        out.total_bytes,
    )
}

/// Provider service for E7g whose every request costs `device` of
/// *wall-clock* time before the in-memory store runs, modeling the
/// device write a real storage node performs per chunk (~100 µs is
/// NVMe-class). Without it the in-memory handler finishes in ~1 µs and
/// the benchmark degenerates into a codec/context-switch microbenchmark
/// whose ratio tracks host load, not transport design. With it, the
/// arm measures what the mux transport is for: keeping many requests
/// in flight so their device times overlap across the server's worker
/// pool, where per-call strictly serializes them.
#[derive(Debug)]
struct TimedProviderService {
    inner: ProviderService,
    device: std::time::Duration,
}

impl atomio_rpc::Service for TimedProviderService {
    fn handle(
        &self,
        request: atomio_rpc::Request,
        payload: Bytes,
    ) -> (atomio_rpc::Response, Bytes) {
        std::thread::sleep(self.device);
        atomio_rpc::Service::handle(&self.inner, request, payload)
    }
}

fn main() {
    let cfg = BenchConfig::default();
    let extents = workload_extents();

    // --- Striping factor -------------------------------------------------
    let mut striping = ExperimentReport::new(
        "E7a",
        "ablation: striping factor (versioning, 16 clients, overlap stress)",
        "providers",
    );
    for &servers in &[1usize, 2, 4, 8, 16, 32] {
        let (driver, _) = BenchConfig { servers, ..cfg }.build(Backend::Versioning);
        let (tput, elapsed, bytes) = measure(driver, &extents);
        striping.push(Row {
            x: servers as u64,
            backend: "versioning".into(),
            throughput_mib_s: tput,
            elapsed_s: elapsed,
            bytes,
            atomic_ok: None,
        });
        eprintln!("  ... {servers} providers done");
    }
    println!("{}", striping.render_table());
    striping.save_json(atomio_bench::report::results_dir()).ok();

    // --- Publication pipeline --------------------------------------------
    let mut pipeline = ExperimentReport::new(
        "E7b",
        "ablation: pipelined vs. serialized metadata publication (versioning)",
        "clients",
    );
    for &clients in &[4usize, 8, 16, 32] {
        let w = OverlapWorkload::new(clients, 32, 256 * 1024, 1, 2);
        let ext: Vec<ExtentList> = (0..clients).map(|c| w.extents_for(c)).collect();
        for (label, mode) in [
            ("pipelined", TicketMode::Pipelined),
            ("serialized-build", TicketMode::SerializedBuild),
        ] {
            let (driver, _) = BenchConfig {
                ticket_mode: mode,
                ..cfg
            }
            .build(Backend::Versioning);
            let (tput, elapsed, bytes) = measure(driver, &ext);
            pipeline.push(Row {
                x: clients as u64,
                backend: label.into(),
                throughput_mib_s: tput,
                elapsed_s: elapsed,
                bytes,
                atomic_ok: None,
            });
        }
        eprintln!("  ... pipeline ablation {clients} clients done");
    }
    for x in pipeline.xs() {
        if let Some(s) = pipeline.speedup_at(x, "pipelined", "serialized-build") {
            pipeline.note(format!("pipelining gain at {x:>3} clients: {s:.2}x"));
        }
    }
    println!("{}", pipeline.render_table());
    pipeline.save_json(atomio_bench::report::results_dir()).ok();

    // --- Allocation strategy ----------------------------------------------
    let mut alloc = ExperimentReport::new(
        "E7c",
        "ablation: chunk allocation strategy (versioning, 16 clients)",
        "run",
    );
    for (label, strategy) in [
        ("round-robin", AllocationStrategy::RoundRobin),
        ("least-loaded", AllocationStrategy::LeastLoaded),
        ("random", AllocationStrategy::Random),
    ] {
        let store = Store::new(
            StoreConfig::default()
                .with_cost(cfg.cost)
                .with_chunk_size(cfg.chunk_size)
                .with_data_providers(cfg.servers)
                .with_meta_shards(cfg.meta_shards)
                .with_allocation(strategy)
                .with_seed(cfg.seed),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let (tput, elapsed, bytes) = measure(driver, &extents);
        alloc.push(Row {
            x: 1,
            backend: label.into(),
            throughput_mib_s: tput,
            elapsed_s: elapsed,
            bytes,
            atomic_ok: None,
        });
        eprintln!("  ... allocation {label} done");
    }
    println!("{}", alloc.render_table());
    alloc.save_json(atomio_bench::report::results_dir()).ok();

    // --- Transfer engine --------------------------------------------------
    // Single client, 64 KiB chunks: data-transfer throughput vs. striping
    // factor, serial vs. pipelined chunk transfers. Serial pays
    // (rpc + net + disk) per chunk regardless of fleet size; pipelined
    // overlaps the RPCs and drains provider disks in parallel, so
    // per-client bandwidth climbs with the striping factor until the
    // client's own NIC saturates. Throughput is measured over the
    // transfer stage (`core.transfer_time`) — the stage the
    // `TransferMode` knob controls; the metadata build/publish cost is
    // mode-independent and reported in the notes.
    let mut transfer = ExperimentReport::new(
        "E7d",
        "ablation: pipelined vs. serial chunk transfers (1 client, 64 KiB chunks)",
        "providers",
    );
    const XFER_CHUNK: u64 = 64 * 1024;
    const XFER_CHUNKS: u64 = 128;
    let total_bytes = XFER_CHUNK * XFER_CHUNKS;
    for &servers in &[1usize, 2, 4, 8, 16, 32] {
        for (label, mode) in [
            ("serial", TransferMode::Serial),
            ("pipelined", TransferMode::Pipelined),
        ] {
            let store = Store::new(
                StoreConfig::default()
                    .with_cost(cfg.cost)
                    .with_chunk_size(XFER_CHUNK)
                    .with_data_providers(servers)
                    .with_meta_shards(cfg.meta_shards)
                    .with_transfer_mode(mode)
                    .with_seed(cfg.seed),
            );
            let blob = store.create_blob();
            let clock = SimClock::new();
            let ext = ExtentList::from_pairs([(0u64, total_bytes)]);
            let blob_ref = &blob;
            let ext_ref = &ext;
            let xfer_stat = store.metrics().time_stat("core.transfer_time");
            let stat_ref = &xfer_stat;
            let times = run_actors_on(&clock, 1, move |_, p| {
                let (s0, t0) = (stat_ref.sum(), p.now());
                blob_ref
                    .write_list(p, ext_ref, Bytes::from(vec![0xA5u8; total_bytes as usize]))
                    .unwrap();
                let (wrote_xfer, wrote) = (stat_ref.sum() - s0, p.now() - t0);
                let (s1, t1) = (stat_ref.sum(), p.now());
                blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
                (wrote_xfer, wrote, stat_ref.sum() - s1, p.now() - t1)
            });
            let (wrote_xfer, wrote, read_xfer, read) = times[0];
            for (phase, xfer, e2e) in [("write", wrote_xfer, wrote), ("read", read_xfer, read)] {
                transfer.push(Row {
                    x: servers as u64,
                    backend: format!("{label}-{phase}"),
                    throughput_mib_s: total_bytes as f64 / (1 << 20) as f64 / xfer.as_secs_f64(),
                    elapsed_s: xfer.as_secs_f64(),
                    bytes: total_bytes,
                    atomic_ok: None,
                });
                if servers == 16 {
                    transfer.note(format!(
                        "end-to-end {label}-{phase} at 16 providers: {:.1} ms \
                         (transfer {:.1} ms + metadata)",
                        e2e.as_secs_f64() * 1e3,
                        xfer.as_secs_f64() * 1e3,
                    ));
                }
            }
            // Where the virtual time went in the headline configuration.
            if servers == 16 && mode == TransferMode::Pipelined {
                transfer.resources =
                    atomio_bench::report::provider_resource_usage(store.providers());
            }
            eprintln!("  ... transfer {label} {servers} providers done");
        }
    }
    for x in transfer.xs() {
        if let Some(s) = transfer.speedup_at(x, "pipelined-write", "serial-write") {
            transfer.note(format!(
                "pipelining write gain at {x:>3} providers: {s:.2}x"
            ));
        }
        if let Some(s) = transfer.speedup_at(x, "pipelined-read", "serial-read") {
            transfer.note(format!("pipelining read gain at {x:>3} providers: {s:.2}x"));
        }
    }
    println!("{}", transfer.render_table());
    transfer.save_json(atomio_bench::report::results_dir()).ok();

    // --- Metadata commit engine -------------------------------------------
    // Single client, one 128-leaf write (255 tree nodes): virtual time of
    // the metadata commit stage (`core.meta_commit_time`) vs. shard
    // count, serial vs. batched commits. Serial pays (rpc + wire +
    // meta_op) per node regardless of shard count; batched overlaps the
    // RPCs, serializes node payloads on the client NIC, and lands one
    // list-request per shard, so commit time shrinks with the shard
    // count. The throughput column is **nodes committed per simulated
    // second** for this experiment.
    let mut meta_commit = ExperimentReport::new(
        "E7e",
        "ablation: batched shard-parallel vs. serial metadata commits (1 client, 128 x 64 KiB)",
        "meta_shards",
    );
    meta_commit.note("throughput column = metadata nodes committed per simulated second");
    for &shards in &[1usize, 2, 4, 8, 16] {
        for (label, mode) in [
            ("serial", MetaCommitMode::Serial),
            ("batched", MetaCommitMode::Batched),
        ] {
            let run_once = || {
                let store = Store::new(
                    StoreConfig::default()
                        .with_cost(cfg.cost)
                        .with_chunk_size(XFER_CHUNK)
                        .with_data_providers(16)
                        .with_meta_shards(shards)
                        .with_meta_commit_mode(mode)
                        .with_seed(cfg.seed),
                );
                let blob = store.create_blob();
                let clock = SimClock::new();
                let ext = ExtentList::from_pairs([(0u64, total_bytes)]);
                let commit_stat = store.metrics().time_stat("core.meta_commit_time");
                let depth_stat = store.metrics().value_stat("core.meta_commit_depth");
                let blob_ref = &blob;
                let ext_ref = &ext;
                let stat_ref = &commit_stat;
                let times = run_actors_on(&clock, 1, move |_, p| {
                    let t0 = p.now();
                    blob_ref
                        .write_list(p, ext_ref, Bytes::from(vec![0x5Au8; total_bytes as usize]))
                        .unwrap();
                    (stat_ref.sum(), p.now() - t0)
                });
                (times[0].0, times[0].1, depth_stat.max())
            };
            let (commit, e2e, depth) = run_once();
            let (commit2, e2e2, _) = run_once();
            assert_eq!(
                (commit, e2e),
                (commit2, e2e2),
                "meta commit must be bit-reproducible"
            );
            meta_commit.push(Row {
                x: shards as u64,
                backend: label.into(),
                throughput_mib_s: depth as f64 / commit.as_secs_f64(),
                elapsed_s: commit.as_secs_f64(),
                bytes: total_bytes,
                atomic_ok: None,
            });
            if shards == 4 {
                meta_commit.note(format!(
                    "{label} at 4 shards: commit {:.2} ms of {:.2} ms end-to-end, \
                     {depth} nodes/commit",
                    commit.as_secs_f64() * 1e3,
                    e2e.as_secs_f64() * 1e3,
                ));
            }
            eprintln!("  ... meta commit {label} {shards} shards done");
        }
    }
    for x in meta_commit.xs() {
        if let Some(s) = meta_commit.speedup_at(x, "batched", "serial") {
            meta_commit.note(format!("batched commit gain at {x:>2} shards: {s:.2}x"));
        }
    }
    println!("{}", meta_commit.render_table());
    meta_commit
        .save_json(atomio_bench::report::results_dir())
        .ok();

    // --- Metadata read path -----------------------------------------------
    // The read-side mirror of E7e: the single client reads the 128-leaf
    // write back, and we time the tree-resolve stage
    // (`core.meta_resolve_time`) vs. shard count. A per-node walk pays
    // (rpc + wire + meta_op) for every node on the root-to-leaf paths;
    // the batched reader issues one list-request per tree level, so the
    // per-node round trips collapse and shards serve a level in
    // parallel. The throughput column is **nodes resolved per simulated
    // second**.
    let mut meta_read = ExperimentReport::new(
        "E7f",
        "ablation: batched per-level vs. per-node metadata reads (1 client, 128 x 64 KiB)",
        "meta_shards",
    );
    meta_read.note("throughput column = metadata nodes resolved per simulated second");
    for &shards in &[1usize, 2, 4, 8, 16] {
        for (label, mode) in [
            ("per-node", MetaReadMode::PerNode),
            ("batched", MetaReadMode::Batched),
        ] {
            let run_once = || {
                let store = Store::new(
                    StoreConfig::default()
                        .with_cost(cfg.cost)
                        .with_chunk_size(XFER_CHUNK)
                        .with_data_providers(16)
                        .with_meta_shards(shards)
                        .with_meta_read_mode(mode)
                        .with_seed(cfg.seed),
                );
                let blob = store.create_blob();
                let clock = SimClock::new();
                let ext = ExtentList::from_pairs([(0u64, total_bytes)]);
                let resolve_stat = store.metrics().time_stat("core.meta_resolve_time");
                let blob_ref = &blob;
                let ext_ref = &ext;
                let stat_ref = &resolve_stat;
                let times = run_actors_on(&clock, 1, move |_, p| {
                    blob_ref
                        .write_list(p, ext_ref, Bytes::from(vec![0xC3u8; total_bytes as usize]))
                        .unwrap();
                    let (s0, t0) = (stat_ref.sum(), p.now());
                    blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
                    (stat_ref.sum() - s0, p.now() - t0)
                });
                (times[0].0, times[0].1, store.meta().node_count() as u64)
            };
            let (resolve, read, nodes) = run_once();
            let (resolve2, read2, _) = run_once();
            assert_eq!(
                (resolve, read),
                (resolve2, read2),
                "meta read must be bit-reproducible"
            );
            meta_read.push(Row {
                x: shards as u64,
                backend: label.into(),
                throughput_mib_s: nodes as f64 / resolve.as_secs_f64(),
                elapsed_s: resolve.as_secs_f64(),
                bytes: total_bytes,
                atomic_ok: None,
            });
            if shards == 4 {
                meta_read.note(format!(
                    "{label} at 4 shards: resolve {:.2} ms of {:.2} ms read end-to-end, \
                     {nodes} tree nodes",
                    resolve.as_secs_f64() * 1e3,
                    read.as_secs_f64() * 1e3,
                ));
            }
            eprintln!("  ... meta read {label} {shards} shards done");
        }
    }
    for x in meta_read.xs() {
        if let Some(s) = meta_read.speedup_at(x, "batched", "per-node") {
            meta_read.note(format!("batched read gain at {x:>2} shards: {s:.2}x"));
        }
    }

    // Wire-transport accounting: the same write + read through the RPC
    // codec (`Loopback` transport, zero-cost services), counting the
    // messages and bytes the workload actually puts on the wire. The
    // counters land in the report's `stats` block.
    {
        let metrics = Metrics::new();
        let providers = 16usize;
        let provider_transport = Arc::new(
            Loopback::new(Arc::new(ProviderService::new(providers))).with_metrics(metrics.clone()),
        );
        let stores: Vec<Arc<dyn ChunkStore>> = (0..providers)
            .map(|i| {
                Arc::new(RemoteProvider::new(
                    ProviderId::new(i as u64),
                    provider_transport.clone() as _,
                )) as Arc<dyn ChunkStore>
            })
            .collect();
        let config = StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(XFER_CHUNK)
            .with_data_providers(providers)
            .with_meta_shards(4)
            .with_seed(cfg.seed);
        let manager = Arc::new(ProviderManager::from_stores(
            stores,
            config.allocation,
            Arc::new(FaultInjector::new(config.seed)),
            config.seed,
        ));
        let meta_transport = Arc::new(
            Loopback::new(Arc::new(MetaService::new(4, XFER_CHUNK))).with_metrics(metrics.clone()),
        );
        let meta = Arc::new(RemoteMetaStore::new(meta_transport as _));
        let store = Store::with_substrates(config, manager, meta);

        let blob = store.create_blob();
        let clock = SimClock::new();
        let ext = ExtentList::from_pairs([(0u64, total_bytes)]);
        let blob_ref = &blob;
        let ext_ref = &ext;
        run_actors_on(&clock, 1, move |_, p| {
            blob_ref
                .write_list(p, ext_ref, Bytes::from(vec![0xC3u8; total_bytes as usize]))
                .unwrap();
            blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
        });
        meta_read.stats = atomio_bench::report::rpc_counter_stats(&metrics);
        meta_read.note(
            "stats = RPC messages/bytes for the same workload over the wire codec \
             (Loopback transport, 16 providers + 4 meta shards)",
        );
    }
    println!("{}", meta_read.render_table());
    meta_read
        .save_json(atomio_bench::report::results_dir())
        .ok();

    // --- Socket transport: per-call vs. multiplexed -----------------------
    // Aggregated RPC throughput of N concurrent clients sharing ONE
    // transport handle to one provider server over real localhost TCP.
    // Per-call serializes every round trip behind a single connection's
    // mutex; mux keeps one request per caller in flight across a pool of
    // 4 connections, demultiplexed by request id, against the server's
    // concurrent per-connection dispatch. Unlike E7a–f this arm runs on
    // real sockets in wall-clock time: absolute numbers vary with the
    // host, the mux/per-call ratio is the result.
    let mut mux = ExperimentReport::new(
        "E7g",
        "ablation: multiplexed vs. per-call TCP transport (real sockets, wall clock)",
        "clients",
    );
    mux.note(
        "throughput column = aggregated payload MiB/s over localhost TCP (wall clock); \
         per-call = one pooled connection with strict per-call framing, \
         mux = 4-connection pool with request-id demultiplexing; \
         the provider models a 100us device write per chunk, so the arm measures \
         how well each transport overlaps device time (per-call serializes it)",
    );
    const MUX_OPS_PER_CLIENT: u64 = 256;
    const MUX_PAYLOAD: usize = 4 * 1024;
    const MUX_DEVICE_US: u64 = 100;
    for &clients in &[1usize, 2, 4, 8, 16] {
        for (label, mode) in [("per-call", RpcMode::PerCall), ("mux", RpcMode::Mux)] {
            let mut server = RpcServer::start_with_config(
                "127.0.0.1:0",
                Arc::new(TimedProviderService {
                    inner: ProviderService::new(1),
                    device: std::time::Duration::from_micros(MUX_DEVICE_US),
                }),
                RpcConfig::default(),
            )
            .expect("bind E7g provider server");
            let metrics = Metrics::new();
            let transport = dial(
                server.local_addr(),
                mode,
                RpcConfig::default(),
                Some(metrics.clone()),
            );
            let start = std::time::Instant::now();
            std::thread::scope(|scope| {
                for t in 0..clients as u64 {
                    let transport = Arc::clone(&transport);
                    scope.spawn(move || {
                        let provider = RemoteProvider::new(ProviderId::new(0), transport);
                        let payload = Bytes::from(vec![t as u8; MUX_PAYLOAD]);
                        for i in 0..MUX_OPS_PER_CLIENT {
                            provider
                                .put_chunk_at(0, ChunkId::new(t << 32 | i), payload.clone())
                                .expect("E7g put");
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let bytes = clients as u64 * MUX_OPS_PER_CLIENT * MUX_PAYLOAD as u64;
            mux.push(Row {
                x: clients as u64,
                backend: label.into(),
                throughput_mib_s: bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
                elapsed_s: elapsed.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
            if clients == 16 && mode == RpcMode::Mux {
                mux.stats = atomio_bench::report::rpc_counter_stats(&metrics);
                mux.note(
                    "stats = RPC counters of the 16-client mux arm \
                     (pool_conns, inflight_peak, mux_queue_time in ns)",
                );
            }
            server.stop();
            eprintln!("  ... transport {label} {clients} clients done");
        }
    }
    for x in mux.xs() {
        if let Some(s) = mux.speedup_at(x, "mux", "per-call") {
            mux.note(format!("mux gain at {x:>2} clients: {s:.2}x"));
        }
    }
    println!("{}", mux.render_table());
    mux.save_json(atomio_bench::report::results_dir()).ok();

    // --- Version-manager placement: in-process vs. remote service ---------
    // E7h: cost of promoting the version manager to the third deployable
    // service. N concurrent writers hammer ONE version manager with the
    // full commit round — append-ticket grant, then publication — either
    // as direct in-process calls (the Loopback deployment) or through
    // `RemoteVersionManager` proxies speaking the mux transport to a
    // `VersionService` on localhost TCP (the `atomio-version-server`
    // deployment). Like E7g this arm runs in wall-clock time on real
    // sockets: the in-process/remote *ratio* — the grant-latency price
    // of distribution, paid once per write regardless of its size — is
    // the result.
    let mut vm_place = ExperimentReport::new(
        "E7h",
        "ablation: in-process vs. remote version manager (ticket+publish rounds, wall clock)",
        "writers",
    );
    vm_place.note(
        "throughput column = ticket-grant + publish rounds per second aggregated over all \
         writers (wall clock); in-process = direct VersionManager calls, remote = \
         RemoteVersionManager over a 4-connection mux pool to a VersionService on \
         localhost TCP; all writers share one version manager (one blob)",
    );
    const VM_OPS_PER_WRITER: u64 = 256;
    let vm_root = |version: atomio_types::VersionId, capacity: u64| {
        atomio_meta::NodeKey::new(
            atomio_types::BlobId::new(1),
            version,
            atomio_types::ByteRange::new(0, capacity),
        )
    };
    for &writers in &[1usize, 2, 4, 8, 16] {
        let rounds = writers as u64 * VM_OPS_PER_WRITER;

        // In-process arm: the same participant-free entry points the
        // server dispatches to, minus the server.
        let vm = Arc::new(atomio_version::VersionManager::new(
            Arc::new(atomio_meta::VersionHistory::new()),
            atomio_meta::TreeConfig::new(XFER_CHUNK),
            atomio_simgrid::CostModel::zero(),
            TicketMode::Pipelined,
        ));
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let vm = Arc::clone(&vm);
                scope.spawn(move || {
                    for _ in 0..VM_OPS_PER_WRITER {
                        let known = vm.history().len();
                        let (ticket, _, _) = vm.ticket_append_local(64, known).expect("E7h ticket");
                        vm.publish_local(ticket, vm_root(ticket.version, ticket.capacity))
                            .expect("E7h publish");
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        vm_place.push(Row {
            x: writers as u64,
            backend: "in-process".into(),
            throughput_mib_s: rounds as f64 / elapsed.as_secs_f64(),
            elapsed_s: elapsed.as_secs_f64(),
            bytes: rounds * 64,
            atomic_ok: None,
        });

        // Remote arm: the third service behind real sockets.
        let mut server = RpcServer::start_with_config(
            "127.0.0.1:0",
            Arc::new(atomio_rpc::VersionService::new(XFER_CHUNK)),
            RpcConfig::default(),
        )
        .expect("bind E7h version server");
        let transport = dial(
            server.local_addr(),
            RpcMode::Mux,
            RpcConfig::default(),
            None,
        );
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let transport = Arc::clone(&transport);
                scope.spawn(move || {
                    let vm = atomio_rpc::RemoteVersionManager::new(1, transport);
                    for _ in 0..VM_OPS_PER_WRITER {
                        let (ticket, _) = vm.ticket_append(64).expect("E7h remote ticket");
                        vm.publish(ticket, vm_root(ticket.version, ticket.capacity))
                            .expect("E7h remote publish");
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        server.stop();
        vm_place.push(Row {
            x: writers as u64,
            backend: "remote".into(),
            throughput_mib_s: rounds as f64 / elapsed.as_secs_f64(),
            elapsed_s: elapsed.as_secs_f64(),
            bytes: rounds * 64,
            atomic_ok: None,
        });
        eprintln!("  ... vm placement {writers} writers done");
    }
    for x in vm_place.xs() {
        if let Some(s) = vm_place.speedup_at(x, "in-process", "remote") {
            vm_place.note(format!(
                "remote grant-round slowdown at {x:>2} writers: {s:.2}x"
            ));
        }
    }
    println!("{}", vm_place.render_table());
    vm_place.save_json(atomio_bench::report::results_dir()).ok();
}
