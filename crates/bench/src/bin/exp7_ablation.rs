//! E7 — ablations of the versioning backend's design choices:
//!
//! * **Striping factor** — aggregated throughput vs. number of data
//!   providers (the paper's *data striping* principle);
//! * **Publication pipeline** — BlobSeer-style pipelined ticket/publish
//!   vs. naive serialized metadata builds (the *versioning without
//!   waiting* principle);
//! * **Allocation strategy** — round-robin vs. least-loaded vs. random
//!   chunk placement.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp7_ablation`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_core::{Store, StoreConfig};
use atomio_mpiio::adio::AdioDriver;
use atomio_mpiio::drivers::VersioningDriver;
use atomio_provider::AllocationStrategy;
use atomio_simgrid::SimClock;
use atomio_types::ExtentList;
use atomio_version::TicketMode;
use atomio_workloads::{run_write_round, OverlapWorkload};
use std::sync::Arc;

const CLIENTS: usize = 16;

fn workload_extents() -> Vec<ExtentList> {
    let w = OverlapWorkload::new(CLIENTS, 32, 256 * 1024, 1, 2);
    (0..CLIENTS).map(|c| w.extents_for(c)).collect()
}

fn measure(driver: Arc<dyn AdioDriver>, extents: &[ExtentList]) -> (f64, f64, u64) {
    let clock = SimClock::new();
    let out = run_write_round(&clock, &driver, extents, true, 1, false);
    (out.throughput_mib_s(), out.elapsed.as_secs_f64(), out.total_bytes)
}

fn main() {
    let cfg = BenchConfig::default();
    let extents = workload_extents();

    // --- Striping factor -------------------------------------------------
    let mut striping = ExperimentReport::new(
        "E7a",
        "ablation: striping factor (versioning, 16 clients, overlap stress)",
        "providers",
    );
    for &servers in &[1usize, 2, 4, 8, 16, 32] {
        let (driver, _) = BenchConfig { servers, ..cfg }.build(Backend::Versioning);
        let (tput, elapsed, bytes) = measure(driver, &extents);
        striping.push(Row {
            x: servers as u64,
            backend: "versioning".into(),
            throughput_mib_s: tput,
            elapsed_s: elapsed,
            bytes,
            atomic_ok: None,
        });
        eprintln!("  ... {servers} providers done");
    }
    println!("{}", striping.render_table());
    striping.save_json(atomio_bench::report::results_dir()).ok();

    // --- Publication pipeline --------------------------------------------
    let mut pipeline = ExperimentReport::new(
        "E7b",
        "ablation: pipelined vs. serialized metadata publication (versioning)",
        "clients",
    );
    for &clients in &[4usize, 8, 16, 32] {
        let w = OverlapWorkload::new(clients, 32, 256 * 1024, 1, 2);
        let ext: Vec<ExtentList> = (0..clients).map(|c| w.extents_for(c)).collect();
        for (label, mode) in [
            ("pipelined", TicketMode::Pipelined),
            ("serialized-build", TicketMode::SerializedBuild),
        ] {
            let (driver, _) = BenchConfig {
                ticket_mode: mode,
                ..cfg
            }
            .build(Backend::Versioning);
            let (tput, elapsed, bytes) = measure(driver, &ext);
            pipeline.push(Row {
                x: clients as u64,
                backend: label.into(),
                throughput_mib_s: tput,
                elapsed_s: elapsed,
                bytes,
                atomic_ok: None,
            });
        }
        eprintln!("  ... pipeline ablation {clients} clients done");
    }
    for x in pipeline.xs() {
        if let Some(s) = pipeline.speedup_at(x, "pipelined", "serialized-build") {
            pipeline.note(format!("pipelining gain at {x:>3} clients: {s:.2}x"));
        }
    }
    println!("{}", pipeline.render_table());
    pipeline.save_json(atomio_bench::report::results_dir()).ok();

    // --- Allocation strategy ----------------------------------------------
    let mut alloc = ExperimentReport::new(
        "E7c",
        "ablation: chunk allocation strategy (versioning, 16 clients)",
        "run",
    );
    for (label, strategy) in [
        ("round-robin", AllocationStrategy::RoundRobin),
        ("least-loaded", AllocationStrategy::LeastLoaded),
        ("random", AllocationStrategy::Random),
    ] {
        let store = Store::new(
            StoreConfig::default()
                .with_cost(cfg.cost)
                .with_chunk_size(cfg.chunk_size)
                .with_data_providers(cfg.servers)
                .with_meta_shards(cfg.meta_shards)
                .with_allocation(strategy)
                .with_seed(cfg.seed),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let (tput, elapsed, bytes) = measure(driver, &extents);
        alloc.push(Row {
            x: 1,
            backend: label.into(),
            throughput_mib_s: tput,
            elapsed_s: elapsed,
            bytes,
            atomic_ok: None,
        });
        eprintln!("  ... allocation {label} done");
    }
    println!("{}", alloc.render_table());
    alloc.save_json(atomio_bench::report::results_dir()).ok();
}
