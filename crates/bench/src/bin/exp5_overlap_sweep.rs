//! E5 — throughput vs. overlap fraction: how much of the locking
//! baseline's collapse is due to actual conflicts vs. covering-range
//! pessimism, and that versioning is insensitive to overlap.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp5_overlap_sweep`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_simgrid::SimClock;
use atomio_types::ExtentList;
use atomio_workloads::{run_write_round, OverlapWorkload};

fn main() {
    let cfg = BenchConfig::default();
    const CLIENTS: usize = 16;

    let mut report = ExperimentReport::new(
        "E5",
        "throughput vs. overlap fraction (16 clients, 32 regions x 256 KiB each)",
        "overlap_pct",
    );
    report.note(format!(
        "{} servers, {} KiB stripes",
        cfg.servers,
        cfg.chunk_size / 1024
    ));
    report.note("overlap 0% means disjoint regions (conflict-free)");

    // (numerator, denominator) overlap fractions.
    for &(num, den) in &[(0u64, 8u64), (1, 8), (2, 8), (4, 8), (7, 8)] {
        let pct = num * 100 / den;
        let workload = OverlapWorkload::new(CLIENTS, 32, 256 * 1024, num, den);
        let extents: Vec<ExtentList> = (0..CLIENTS).map(|c| workload.extents_for(c)).collect();
        for backend in Backend::ATOMIC {
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            let out = run_write_round(&clock, &driver, &extents, backend.atomic_flag(), 1, false);
            report.push(Row {
                x: pct,
                backend: backend.label().to_owned(),
                throughput_mib_s: out.throughput_mib_s(),
                elapsed_s: out.elapsed.as_secs_f64(),
                bytes: out.total_bytes,
                atomic_ok: None,
            });
        }
        eprintln!("  ... overlap {pct}% done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
            report.note(format!(
                "speedup vs lustre-lock at {x:>3}% overlap: {s:.2}x"
            ));
        }
        if let Some(s) = report.speedup_at(x, "conflict-detect", "lustre-lock") {
            report.note(format!(
                "conflict-detect vs lustre-lock at {x:>3}% overlap: {s:.2}x"
            ));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
