//! E4 — throughput vs. number of non-contiguous regions per request
//! (fixed total bytes per client), supporting the RR-7487-style
//! analysis: how request fragmentation affects each strategy.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp4_regions_sweep`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_simgrid::SimClock;
use atomio_types::ExtentList;
use atomio_workloads::{run_write_round, OverlapWorkload};

fn main() {
    let cfg = BenchConfig::default();
    const CLIENTS: usize = 16;
    const BYTES_PER_CLIENT: u64 = 8 * 1024 * 1024;

    let mut report = ExperimentReport::new(
        "E4",
        "throughput vs. regions per request (8 MiB per client, 16 clients, 50% overlap)",
        "regions",
    );
    report.note(format!(
        "{} servers, {} KiB stripes",
        cfg.servers,
        cfg.chunk_size / 1024
    ));

    for &regions in &[1usize, 4, 16, 64, 256] {
        let region_size = BYTES_PER_CLIENT / regions as u64;
        let workload = OverlapWorkload::new(CLIENTS, regions, region_size, 1, 2);
        let extents: Vec<ExtentList> = (0..CLIENTS).map(|c| workload.extents_for(c)).collect();
        for backend in Backend::ATOMIC {
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            let out = run_write_round(&clock, &driver, &extents, backend.atomic_flag(), 1, false);
            report.push(Row {
                x: regions as u64,
                backend: backend.label().to_owned(),
                throughput_mib_s: out.throughput_mib_s(),
                elapsed_s: out.elapsed.as_secs_f64(),
                bytes: out.total_bytes,
                atomic_ok: None,
            });
        }
        eprintln!("  ... {regions} regions done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
            report.note(format!("speedup vs lustre-lock at {x:>4} regions: {s:.2}x"));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
