//! E2 — §VI series 2: the MPI-tile-IO benchmark.
//!
//! "In the second experiment, we performed an evaluation of the
//! performance of our approach using a standard benchmark, MPI-tile-IO,
//! that closely simulates the access patterns of real scientific
//! applications that split the input data into overlapped subdomains
//! that need to be concurrently written in the same file under MPI
//! atomicity guarantees." (paper, §VI)
//!
//! Unlike E1 this goes through the *full MPI-I/O path*: per-rank
//! subarray file views, collective `write_at_all`, atomic mode.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp2_tile_io`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_mpiio::{Communicator, File, OpenMode};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use atomio_workloads::verify::{check_serializable, WriteRecord};
use atomio_workloads::TileWorkload;
use std::sync::Arc;

fn main() {
    let cfg = BenchConfig::default();
    let mut report = ExperimentReport::new(
        "E2",
        "MPI-tile-IO: collective overlapped tile writes, atomic mode",
        "processes",
    );
    report.note(format!(
        "g x g tiles of 256x256 elements x 32 B, ghost overlap 2 elements, {} servers",
        cfg.servers
    ));
    report.note("full MPI-I/O path: subarray views + MPI_File_write_at_all + atomic mode");

    for g in [1u64, 2, 3, 4, 5, 6, 8] {
        let workload = TileWorkload::new(g, g, 256, 256, 32, 2, 2);
        let ranks = workload.processes();
        let verify = ranks <= 4;
        for backend in Backend::ATOMIC {
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            let comm = Communicator::new(ranks, cfg.cost);
            let files: Vec<File> = (0..ranks)
                .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
                .collect();
            let stamps: Vec<WriteStamp> = (0..ranks)
                .map(|r| WriteStamp::new(ClientId::new(r as u64), 1))
                .collect();
            let extents: Vec<ExtentList> = (0..ranks).map(|r| workload.extents_for(r)).collect();

            let start = clock.now();
            run_actors_on(&clock, ranks, |rank, p| {
                let f = &files[rank];
                f.set_view(workload.view(rank).expect("valid view"));
                f.set_atomic(backend.atomic_flag());
                let payload = stamps[rank].payload_for(&extents[rank]);
                f.write_at_all(p, 0, &payload).expect("collective write");
            });
            let elapsed = clock.now() - start;
            let total_bytes = workload.bytes_per_process() * ranks as u64;

            let atomic_ok = if verify {
                let writes: Vec<WriteRecord> = (0..ranks)
                    .map(|r| WriteRecord::new(stamps[r], extents[r].clone()))
                    .collect();
                let state = run_actors_on(&clock, 1, |_, p| {
                    driver
                        .read_extents(
                            p,
                            ClientId::new(u64::MAX),
                            &ExtentList::single(ByteRange::new(0, workload.dataset_bytes())),
                            false,
                        )
                        .expect("read-back")
                })
                .pop()
                .expect("one reader");
                match check_serializable(&state, &writes) {
                    Ok(_) => Some(true),
                    Err(v) => panic!("{} tile-io violated atomicity: {v:?}", backend.label()),
                }
            } else {
                None
            };

            report.push(Row {
                x: ranks as u64,
                backend: backend.label().to_owned(),
                throughput_mib_s: total_bytes as f64
                    / (1024.0 * 1024.0)
                    / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
                elapsed_s: elapsed.as_secs_f64(),
                bytes: total_bytes,
                atomic_ok,
            });
        }
        eprintln!("  ... {ranks} processes done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
            report.note(format!("speedup vs lustre-lock at {x:>3} procs: {s:.2}x"));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
