//! E11 — connection scaling of the RPC server front-end: the epoll
//! reactor (`--server-mode reactor`) vs. the classic thread-per-
//! connection front-end (`--server-mode threads`), over real localhost
//! TCP in wall-clock time.
//!
//! Every arm runs N concurrent clients, each holding **one persistent
//! connection** (strict per-call framing, single pooled conn, no
//! client-side reader thread) against one provider server whose every
//! request charges a 100 µs wall-clock device write — the E7g device
//! model — so throughput measures request overlap across the server's
//! shared dispatch pool, not codec microseconds. Both front-ends feed
//! the same 4-worker pool; only the socket front-end differs:
//!
//! * **threads** — one blocking reader thread per connection, so the
//!   server's thread count grows linearly with N;
//! * **reactor** — ONE epoll thread multiplexes every connection, so
//!   the server's thread count stays constant at any N.
//!
//! While all N clients are connected, the arm samples the process
//! thread count (`/proc/self/status`) and subtracts the baseline and
//! the N client threads; the remainder is the server's connection-
//! handling overhead, reported per arm in `stats`. A final probe pins
//! down admission control: with `max_conns = 2` and two connections
//! held open, a third client's request is answered with a typed
//! `Busy` that surfaces as [`atomio_types::Error::AdmissionRejected`].
//!
//! Run: `cargo run -p atomio-bench --release --bin exp11_conn_scaling`

use atomio_bench::{ExperimentReport, Row};
use atomio_provider::ChunkStore;
use atomio_rpc::{
    dial, ProviderService, RemoteProvider, RpcConfig, RpcMode, RpcServer, ServerMode,
};
use atomio_simgrid::Metrics;
use atomio_types::{ChunkId, Error, ProviderId};
use bytes::Bytes;
use std::sync::{Arc, Barrier};

const PAYLOAD: usize = 4 * 1024;
const DEVICE_US: u64 = 100;
/// Total op budget for the large arms: each of N clients issues
/// `TOTAL_OPS / N` requests so every arm moves the same byte volume.
const TOTAL_OPS: u64 = 65_536;

/// Provider service whose every request costs `device` of wall-clock
/// time before the in-memory store runs (the E7g device model: ~100 µs
/// is an NVMe-class chunk write). It keeps the arm measuring how each
/// front-end overlaps device time across connections rather than
/// per-request codec cost.
#[derive(Debug)]
struct TimedProviderService {
    inner: ProviderService,
    device: std::time::Duration,
}

impl atomio_rpc::Service for TimedProviderService {
    fn handle(
        &self,
        request: atomio_rpc::Request,
        payload: Bytes,
    ) -> (atomio_rpc::Response, Bytes) {
        std::thread::sleep(self.device);
        atomio_rpc::Service::handle(&self.inner, request, payload)
    }
}

/// Current thread count of this process, from `/proc/self/status`.
fn threads_now() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn server_cfg(mode: ServerMode) -> RpcConfig {
    RpcConfig {
        server_mode: mode,
        max_conns: 2048,
        ..RpcConfig::default()
    }
}

/// One single-connection per-call client config: exactly one persistent
/// pooled connection and no client-side reader thread, so N clients
/// hold N server connections and add exactly N client threads.
fn client_cfg() -> RpcConfig {
    RpcConfig {
        pool_conns: 1,
        ..RpcConfig::default()
    }
}

fn ops_per_client(clients: u64) -> u64 {
    if clients <= 16 {
        // Long enough (~0.5-1 s of device time) that the 8/16-client
        // parity ratio measures the front-end, not thread-spawn jitter.
        2048
    } else {
        (TOTAL_OPS / clients).max(16)
    }
}

fn main() {
    let mut report = ExperimentReport::new(
        "E11",
        "conn scaling: epoll reactor vs thread-per-connection front-end (real sockets, wall clock)",
        "conns",
    );
    report.note(
        "each client holds ONE persistent per-call connection and issues 4 KiB puts \
         against a provider modeling a 100us device write; both front-ends share the \
         same 4-worker dispatch pool, so rows compare socket front-ends only",
    );
    report.note(
        "stats: <mode>.server_threads_extra@N = process threads while all N clients \
         are connected, minus the pre-connect baseline and the N client threads — \
         the front-end's own connection-handling threads",
    );
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    report.note(format!(
        "host: {cpus} CPU(s); clients and server share cores, so absolute MiB/s and \
         mid-sweep ratios carry scheduler noise (interleaved best-of-N per arm); the \
         structural result is the constant reactor thread count at every N"
    ));

    for &clients in &[8u64, 16, 64, 256, 1024] {
        // Each arm is rerun several times with the two modes
        // interleaved in time, and the best pass per mode kept: on a
        // small shared host, wall-clock localhost runs are dominated by
        // co-tenant load spikes, and interleaved best-of-N compares the
        // front-ends, not the host's moment-to-moment weather.
        let reps = if clients <= 16 { 5 } else { 3 };
        let ops = ops_per_client(clients);
        let arms: Vec<(&str, ServerMode, Metrics, RpcServer)> = [
            ("threads", ServerMode::Threads),
            ("reactor", ServerMode::Reactor),
        ]
        .into_iter()
        .map(|(label, mode)| {
            let metrics = Metrics::new();
            let server = RpcServer::start_with_metrics(
                "127.0.0.1:0",
                Arc::new(TimedProviderService {
                    inner: ProviderService::new(1),
                    device: std::time::Duration::from_micros(DEVICE_US),
                }),
                server_cfg(mode),
                Some(metrics.clone()),
            )
            .expect("bind E11 provider server");
            (label, mode, metrics, server)
        })
        .collect();
        let mut best: Vec<Option<(std::time::Duration, u64)>> = vec![None; arms.len()];
        for rep in 0..reps as u64 {
            for (arm, best) in arms.iter().zip(best.iter_mut()) {
                let addr = arm.3.local_addr();
                let baseline = threads_now();
                // All clients connect (first op) and then rendezvous, so
                // the main thread samples the process thread count while
                // every connection is open; clients keep their
                // connection for the rest of the op loop.
                let connected = Barrier::new(clients as usize + 1);
                let start = std::time::Instant::now();
                let mut extra_threads = 0u64;
                std::thread::scope(|scope| {
                    for t in 0..clients {
                        let connected = &connected;
                        scope.spawn(move || {
                            let transport = dial(addr, RpcMode::PerCall, client_cfg(), None);
                            let provider = RemoteProvider::new(ProviderId::new(0), transport);
                            let payload = Bytes::from(vec![t as u8; PAYLOAD]);
                            // Chunk ids are namespaced per rep and per
                            // client: the provider rejects id reuse.
                            let ns = rep << 60 | t << 32;
                            provider
                                .put_chunk_at(0, ChunkId::new(ns), payload.clone())
                                .expect("E11 first put");
                            connected.wait();
                            for i in 1..ops {
                                provider
                                    .put_chunk_at(0, ChunkId::new(ns | i), payload.clone())
                                    .expect("E11 put");
                            }
                        });
                    }
                    connected.wait();
                    extra_threads = threads_now()
                        .saturating_sub(baseline)
                        .saturating_sub(clients);
                });
                let elapsed = start.elapsed();
                if best.is_none_or(|(e, _)| elapsed < e) {
                    *best = Some((elapsed, extra_threads));
                }
            }
        }
        for ((label, _, metrics, mut server), best) in arms.into_iter().zip(best) {
            let (elapsed, extra_threads) = best.expect("at least one rep");
            let bytes = clients * ops * PAYLOAD as u64;
            report.push(Row {
                x: clients,
                backend: label.into(),
                throughput_mib_s: bytes as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
                elapsed_s: elapsed.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
            report.stat(
                format!("{label}.server_threads_extra@{clients}"),
                extra_threads,
            );
            server.stop();
            if clients == 1024 {
                for (name, value) in metrics.counter_snapshot() {
                    if name.starts_with("rpc.") {
                        report.stat(format!("{label}.{name}@1024"), value);
                    }
                }
            }
            eprintln!("  ... {label} {clients} conns done (+{extra_threads} server threads)");
        }
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "reactor", "threads") {
            report.note(format!(
                "reactor/threads throughput at {x:>4} conns: {s:.2}x"
            ));
        }
    }

    // --- Admission control probe ------------------------------------------
    // max_conns = 2, two idle connections held open: a third client's
    // first request must come back as a typed Busy in both modes.
    for (label, mode) in [
        ("threads", ServerMode::Threads),
        ("reactor", ServerMode::Reactor),
    ] {
        let mut server = RpcServer::start_with_config(
            "127.0.0.1:0",
            Arc::new(ProviderService::new(1)),
            RpcConfig {
                server_mode: mode,
                max_conns: 2,
                ..RpcConfig::default()
            },
        )
        .expect("bind E11 admission server");
        let addr = server.local_addr();
        let _held: Vec<std::net::TcpStream> = (0..2)
            .map(|_| std::net::TcpStream::connect(addr).expect("hold conn"))
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.open_conns() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let transport = dial(addr, RpcMode::PerCall, client_cfg(), None);
        let provider = RemoteProvider::new(ProviderId::new(0), transport);
        let verdict = match provider.put_chunk_at(0, ChunkId::new(1), Bytes::from_static(b"x")) {
            Err(Error::AdmissionRejected { active, max_conns }) => {
                format!("typed Busy (active={active}, max_conns={max_conns})")
            }
            other => format!("UNEXPECTED: {other:?}"),
        };
        report.note(format!(
            "admission [{label}]: 3rd conn over max_conns=2 -> {verdict}"
        ));
        server.stop();
    }

    println!("{}", report.render_table());
    report.save_json(atomio_bench::report::results_dir()).ok();
}
