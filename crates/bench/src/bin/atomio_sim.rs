//! `atomio_sim` — the command-line simulation driver.
//!
//! Lets a user run any workload × backend combination without writing
//! code:
//!
//! ```text
//! atomio_sim backends
//! atomio_sim write-bench --backend versioning --clients 16 --regions 32 \
//!             --region-kib 256 --overlap-pct 50 --servers 16 --verify
//! atomio_sim tile --grid 4 --tile 128 --elem 32 --ghost 2 \
//!             --backend lustre-lock --two-phase
//! ```
//!
//! All time is simulated; results print as one table row plus the
//! atomicity verdict.

use atomio_bench::{Backend, BenchConfig};
use atomio_mpiio::{CollectiveStrategy, Communicator, File, OpenMode};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ClientId, ExtentList};
use atomio_workloads::{run_write_round, OverlapWorkload, TileWorkload};
use std::collections::HashMap;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:
  atomio_sim backends
  atomio_sim write-bench [--backend NAME] [--clients N] [--regions N]
                         [--region-kib N] [--overlap-pct P] [--servers N]
                         [--chunk-kib N] [--verify]
  atomio_sim tile [--backend NAME] [--grid G] [--tile N] [--elem BYTES]
                  [--ghost N] [--servers N] [--two-phase]
  atomio_sim scrub [--servers N] [--chunks N] [--corrupt N]"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> (HashMap<String, String>, bool, bool) {
    let mut flags = HashMap::new();
    let mut verify = false;
    let mut two_phase = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--verify" => verify = true,
            "--two-phase" => two_phase = true,
            key if key.starts_with("--") => {
                let value = args.get(i + 1).unwrap_or_else(|| usage());
                flags.insert(key.trim_start_matches("--").to_owned(), value.clone());
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    (flags, verify, two_phase)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn backend_by_name(name: &str) -> Backend {
    match name {
        "versioning" => Backend::Versioning,
        "lustre-lock" => Backend::LustreLock,
        "whole-file-lock" => Backend::WholeFileLock,
        "conflict-detect" => Backend::ConflictDetect,
        "no-lock" => Backend::NoLock,
        other => {
            eprintln!("unknown backend {other}; run `atomio_sim backends`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let (flags, verify, two_phase) = parse_flags(&args[1..]);

    match command.as_str() {
        "backends" => {
            for b in Backend::ALL {
                println!(
                    "{:<24} atomic mode: {}",
                    b.label(),
                    if b.atomic_flag() {
                        "supported"
                    } else {
                        "none (raw)"
                    }
                );
            }
        }
        "write-bench" => {
            let backend = backend_by_name(&get(&flags, "backend", "versioning".to_owned()));
            let clients: usize = get(&flags, "clients", 16);
            let regions: usize = get(&flags, "regions", 32);
            let region_kib: u64 = get(&flags, "region-kib", 256);
            let overlap_pct: u64 = get(&flags, "overlap-pct", 50).min(99);
            let cfg = BenchConfig {
                servers: get(&flags, "servers", 16),
                chunk_size: get(&flags, "chunk-kib", 256u64) * 1024,
                ..BenchConfig::default()
            };
            let workload =
                OverlapWorkload::new(clients, regions, region_kib * 1024, overlap_pct, 100);
            let extents: Vec<ExtentList> = (0..clients).map(|c| workload.extents_for(c)).collect();
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            let out = run_write_round(&clock, &driver, &extents, backend.atomic_flag(), 1, verify);
            println!(
                "{} | {clients} clients x {regions} x {region_kib} KiB ({overlap_pct}% overlap)",
                backend.label()
            );
            println!(
                "  {:.1} MiB/s simulated aggregate, round took {:?}",
                out.throughput_mib_s(),
                out.elapsed
            );
            match (&out.violation, verify) {
                (_, false) => println!("  atomicity: not checked (pass --verify)"),
                (None, true) => println!("  atomicity: serializable (verified)"),
                (Some(v), true) => println!("  atomicity: VIOLATED — {v:?}"),
            }
        }
        "scrub" => {
            // Demonstrate integrity scrubbing: write replicated chunks,
            // rot a few, scrub-and-repair, re-scrub.
            use atomio_core::{Store, StoreConfig};
            use bytes::Bytes;
            let servers: usize = get(&flags, "servers", 8);
            let chunks: u64 = get(&flags, "chunks", 32);
            let corrupt: u64 = get(&flags, "corrupt", 3).min(chunks);
            let store = Store::new(
                StoreConfig::default()
                    .with_data_providers(servers)
                    .with_chunk_size(64 * 1024)
                    .with_replication(2, 2),
            );
            let blob = store.create_blob();
            let clock = SimClock::new();
            run_actors_on(&clock, 1, |_, p| {
                blob.write(
                    p,
                    0,
                    Bytes::from(vec![0x77u8; (chunks * 64 * 1024) as usize]),
                )
                .unwrap();
                // Rot `corrupt` chunks: probe provider tables for real ids.
                let mut rotted = 0;
                'outer: for provider in store.providers().providers() {
                    for raw in 0..(2 * chunks) {
                        let c = atomio_types::ChunkId::new(raw);
                        if provider.has_chunk(c) {
                            provider.corrupt_chunk(c, 1);
                            rotted += 1;
                            if rotted == corrupt {
                                break 'outer;
                            }
                        }
                    }
                }
                println!(
                    "wrote {chunks} chunks x2 replicas over {servers} servers; rotted {rotted}"
                );
                let (found, repaired) = store.scrub_and_repair(p).unwrap();
                println!("scrub pass 1: found {found} corrupted, repaired {repaired}");
                let (found2, _) = store.scrub_and_repair(p).unwrap();
                println!("scrub pass 2: found {found2} corrupted");
                let got = blob.read(p, 0, chunks * 64 * 1024).unwrap();
                assert!(
                    got.iter().all(|&b| b == 0x77),
                    "data corrupted after repair"
                );
                println!("data verified bit-exact after repair ({} MiB)", chunks / 16);
            });
            println!("simulated time: {:?}", clock.now());
        }
        "tile" => {
            let backend = backend_by_name(&get(&flags, "backend", "versioning".to_owned()));
            let grid: u64 = get(&flags, "grid", 4);
            let tile: u64 = get(&flags, "tile", 128);
            let elem: u64 = get(&flags, "elem", 32);
            let ghost: u64 = get(&flags, "ghost", 2);
            let cfg = BenchConfig {
                servers: get(&flags, "servers", 16),
                ..BenchConfig::default()
            };
            let workload = TileWorkload::new(grid, grid, tile, tile, elem, ghost, ghost);
            let ranks = workload.processes();
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            let comm = Communicator::new(ranks, cfg.cost);
            let files: Vec<File> = (0..ranks)
                .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
                .collect();
            let start = clock.now();
            run_actors_on(&clock, ranks, |rank, p| {
                let f = &files[rank];
                f.set_view(workload.view(rank).expect("valid view"));
                f.set_atomic(backend.atomic_flag());
                if two_phase {
                    f.set_collective(CollectiveStrategy::TwoPhase {
                        aggregators: cfg.servers,
                    });
                }
                let stamp = WriteStamp::new(ClientId::new(rank as u64), 1);
                let payload = stamp.payload_for(&workload.extents_for(rank));
                f.write_at_all(p, 0, &payload).expect("collective write");
            });
            let elapsed = clock.now() - start;
            let total = workload.bytes_per_process() * ranks as u64;
            println!(
                "{} | {grid}x{grid} tiles of {tile}x{tile} x {elem} B, ghost {ghost}{}",
                backend.label(),
                if two_phase { ", two-phase" } else { "" }
            );
            println!(
                "  {:.1} MiB/s simulated aggregate over {ranks} ranks, {:?}",
                total as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
                elapsed
            );
        }
        _ => usage(),
    }
}
