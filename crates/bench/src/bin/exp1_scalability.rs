//! E1 — §VI series 1: aggregated throughput vs. number of concurrent
//! clients writing overlapping non-contiguous regions to one shared
//! file under MPI atomic mode.
//!
//! "Our first experiment aims at evaluating the scalability of our
//! approach when increasing the number of clients that concurrently
//! write non-contiguous regions into the same file. [...] each of the
//! clients writes a large set of non-contiguous regions that are
//! intentionally selected in such way as to generate a large number of
//! overlapping that need to obey MPI atomicity." (paper, §VI)
//!
//! Run: `cargo run -p atomio-bench --release --bin exp1_scalability`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_simgrid::SimClock;
use atomio_types::ExtentList;
use atomio_workloads::{run_write_round, OverlapWorkload};

fn main() {
    let cfg = BenchConfig::default();
    let mut report = ExperimentReport::new(
        "E1",
        "aggregated throughput vs. concurrent clients (overlapping non-contiguous atomic writes)",
        "clients",
    );
    report.note(format!(
        "{} servers, {} KiB stripes, 32 regions x 256 KiB per client, 50% neighbour overlap",
        cfg.servers,
        cfg.chunk_size / 1024
    ));
    report.note("cost model: grid5000 (GbE + SATA disks); throughput in simulated MiB/s");

    let client_counts = [1usize, 2, 4, 8, 16, 32, 64];
    for &clients in &client_counts {
        let workload = OverlapWorkload::new(clients, 32, 256 * 1024, 1, 2);
        let extents: Vec<ExtentList> = (0..clients).map(|c| workload.extents_for(c)).collect();
        // Verify atomicity at the small end (cheap), trust the strategy
        // at the large end (timing only).
        let verify = clients <= 8;
        for backend in Backend::ATOMIC {
            let (driver, _metrics) = cfg.build(backend);
            let clock = SimClock::new();
            let out = run_write_round(&clock, &driver, &extents, backend.atomic_flag(), 1, verify);
            if let Some(v) = &out.violation {
                panic!(
                    "{} violated atomicity at {clients} clients: {v:?}",
                    backend.label()
                );
            }
            report.push(Row {
                x: clients as u64,
                backend: backend.label().to_owned(),
                throughput_mib_s: out.throughput_mib_s(),
                elapsed_s: out.elapsed.as_secs_f64(),
                bytes: out.total_bytes,
                atomic_ok: verify.then_some(out.violation.is_none()),
            });
        }
        eprintln!("  ... {clients} clients done");
    }

    // The headline claim: versioning vs. the Lustre-style baseline.
    for &clients in &client_counts {
        if let Some(s) = report.speedup_at(clients as u64, "versioning", "lustre-lock") {
            report.note(format!(
                "speedup vs lustre-lock at {clients:>3} clients: {s:.2}x"
            ));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
