//! E9d — the fsync-policy ablation for the durable disk backend: what
//! does each [`FsyncPolicy`] cost in barrier-ack latency, and how wide
//! is the durability window it leaves open?
//!
//! Two arms, both **wall clock** (fsync cost is real time, invisible to
//! the virtual clock):
//!
//! * **Store arm (the rows)** — iterative halo-overlap checkpoint
//!   bursts through an in-process loopback `Store`, sweeping writer
//!   count, with the storage substrate as the backend axis: `memory`
//!   (the RAM baseline) vs. the disk backend under `per-publish`,
//!   `group:4`, `group:16`, and `deferred` publish-log fsync. Every
//!   disk arm pays the same chunk/meta appends; only the publish-log
//!   sync schedule differs.
//! * **Publish-log arm (the notes/stats)** — a burst of ticket+publish
//!   pairs straight into a durable `VersionManager` per policy,
//!   reporting publish acks per second, the log's `unsynced_peak` (the
//!   worst-case count of *acknowledged* publishes a crash would roll
//!   back — the durability window the policy trades away), `syncs`
//!   issued, and the wall time to replay the log on reopen.
//!
//! Absolute numbers vary with the host and filesystem; the shape —
//! per-publish pays per-ack, group amortizes with a bounded window,
//! deferred is fastest with an unbounded window — is the result.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp9_durability`

use atomio_bench::report::{results_dir, StatEntry};
use atomio_bench::{ExperimentReport, Row};
use atomio_core::{Store, StoreConfig};
use atomio_meta::{NodeKey, TreeConfig, VersionHistory};
use atomio_mpiio::comm::Communicator;
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::{CostModel, SimClock};
use atomio_types::stamp::WriteStamp;
use atomio_types::tempdir::TempDir;
use atomio_types::{BackendConfig, BlobId, ByteRange, ClientId, FsyncPolicy};
use atomio_version::{TicketMode, VersionManager};
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0xE9D;
const CHUNK: u64 = 4096;
/// Bytes per domain cell.
const CELL: u64 = 16;
/// Domain cells per rank: 64 KiB of payload each.
const CELLS: u64 = 4096;
/// Ghost cells on each side of a slab.
const HALO: u64 = 32;
/// Checkpoint iterations per burst.
const ITERS: u64 = 4;

/// The fsync-policy sweep, label first (the row's backend column).
fn policies() -> [(&'static str, FsyncPolicy); 4] {
    [
        ("per-publish", FsyncPolicy::PerPublish),
        ("group:4", FsyncPolicy::Group(4)),
        ("group:16", FsyncPolicy::Group(16)),
        ("deferred", FsyncPolicy::Deferred),
    ]
}

fn store_on(backend: BackendConfig) -> Store {
    Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(CHUNK)
            .with_data_providers(4)
            .with_meta_shards(2)
            .with_backend(backend)
            .with_seed(SEED),
    )
}

/// One wall-clock checkpoint burst: `writers` ranks dump their slabs
/// for [`ITERS`] barrier-fenced iterations. Returns `(ack, bytes)`.
fn wall_burst(store: &Store, writers: usize) -> (Duration, u64) {
    let workload = atomio_workloads::CheckpointWorkload::new(writers, CELLS, CELL, HALO);
    let blob = store.create_blob();
    let clock = SimClock::new();
    let comm = Communicator::new(writers, CostModel::zero());
    let blob_ref = &blob;
    let comm_ref = &comm;
    let workload_ref = &workload;
    let start = Instant::now();
    run_actors_on(&clock, writers, |i, p| {
        let extents = workload_ref.extents_for(i);
        for iter in 0..ITERS {
            comm_ref.barrier(p);
            let stamp = WriteStamp::new(ClientId::new(i as u64), iter);
            blob_ref
                .write_list(p, &extents, Bytes::from(stamp.payload_for(&extents)))
                .expect("E9d write");
            comm_ref.barrier(p);
        }
    });
    let ack = start.elapsed();
    let latest = run_actors_on(&clock, 1, |_, p| blob_ref.latest(p).unwrap().version)
        .pop()
        .unwrap();
    assert_eq!(latest.raw(), writers as u64 * ITERS, "all dumps published");
    let bytes = ITERS * (0..writers).map(|r| workload.bytes_for(r)).sum::<u64>();
    (ack, bytes)
}

/// Publishes per burst in the publish-log microbenchmark.
const PUBLISHES: u64 = 2000;

fn durable_vm(dir: &std::path::Path, fsync: FsyncPolicy) -> VersionManager {
    VersionManager::durable(
        dir,
        Arc::new(VersionHistory::new()),
        TreeConfig::new(CHUNK),
        CostModel::zero(),
        TicketMode::Pipelined,
        fsync,
    )
    .expect("open publish log")
}

/// Burst [`PUBLISHES`] ticket+publish pairs into a fresh durable
/// manager, then reopen the directory and time the replay. Returns
/// `(ack, replay, appends, syncs, unsynced_peak)`.
fn publish_burst(fsync: FsyncPolicy) -> (Duration, Duration, u64, u64, u32) {
    let tmp = TempDir::new("atomio-e9d-log");
    let vm = durable_vm(tmp.path(), fsync);
    let clock = SimClock::new();
    let vm_ref = &vm;
    let start = Instant::now();
    run_actors_on(&clock, 1, move |_, p| {
        for _ in 0..PUBLISHES {
            let (t, _) = vm_ref.ticket_append(p, CHUNK).expect("E9d ticket");
            let root = NodeKey {
                blob: BlobId::new(0),
                version: t.version,
                range: ByteRange::new(0, t.version.raw() * CHUNK),
            };
            vm_ref.publish(p, t, root).expect("E9d publish");
        }
    });
    let ack = start.elapsed();
    let stats = vm.publish_log_stats().expect("durable manager has a log");
    drop(vm);

    let t0 = Instant::now();
    let reopened = durable_vm(tmp.path(), fsync);
    let replay = t0.elapsed();
    // No crash happened, so even unsynced appends are in the page
    // cache and the full chain replays; `unsynced_peak` is what a
    // crash at the worst moment would have rolled back.
    let latest = run_actors_on(&clock, 1, |_, p| reopened.latest(p).version)
        .pop()
        .unwrap();
    assert_eq!(latest.raw(), PUBLISHES, "replay recovered the full chain");
    (ack, replay, stats.appends, stats.syncs, stats.unsynced_peak)
}

fn main() {
    let mut report = ExperimentReport::new(
        "E9d",
        "fsync-policy ablation: barrier-ack latency vs. durability window (disk backend, wall clock)",
        "writers",
    );
    report.note(
        "throughput column = checkpoint payload MiB per second of wall-clock barrier-ack \
         time through an in-process loopback store (4 providers, 2 shards, 64 KiB/rank x 4 \
         iterations); memory = RAM substrate baseline, disk arms differ only in the publish \
         log's fsync schedule; absolute numbers vary with the host filesystem, the \
         per-publish/group/deferred ordering is the result",
    );

    // --- Store arm: checkpoint bursts per substrate ------------------------
    for &writers in &[2usize, 4, 8] {
        {
            let store = store_on(BackendConfig::Memory);
            let (ack, bytes) = wall_burst(&store, writers);
            report.push(Row {
                x: writers as u64,
                backend: "memory".into(),
                throughput_mib_s: bytes as f64 / (1 << 20) as f64 / ack.as_secs_f64(),
                elapsed_s: ack.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
            eprintln!("  ... E9d memory {writers} writers done");
        }
        for (label, fsync) in policies() {
            let tmp = TempDir::new("atomio-e9d-store");
            let store = store_on(BackendConfig::disk(tmp.path()).with_fsync(fsync));
            let (ack, bytes) = wall_burst(&store, writers);
            report.push(Row {
                x: writers as u64,
                backend: format!("disk/{label}"),
                throughput_mib_s: bytes as f64 / (1 << 20) as f64 / ack.as_secs_f64(),
                elapsed_s: ack.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
            eprintln!("  ... E9d disk/{label} {writers} writers done");
        }
    }
    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "disk/deferred", "disk/per-publish") {
            report.note(format!(
                "deferred vs per-publish barrier-ack gain at {x} writers: {s:.2}x"
            ));
        }
    }

    // --- Publish-log arm: the window each policy leaves open ---------------
    for (label, fsync) in policies() {
        let (ack, replay, appends, syncs, unsynced_peak) = publish_burst(fsync);
        report.note(format!(
            "publish log under {label}: {PUBLISHES} publishes acked in {:.2} ms \
             ({:.0} acks/s), {syncs} fsyncs for {appends} appends, worst-case \
             durability window {unsynced_peak} acked publish(es), reopen replay {:.2} ms",
            ack.as_secs_f64() * 1e3,
            PUBLISHES as f64 / ack.as_secs_f64(),
            replay.as_secs_f64() * 1e3,
        ));
        for (name, value) in [
            ("appends", appends),
            ("syncs", syncs),
            ("unsynced_peak", u64::from(unsynced_peak)),
        ] {
            report.stats.push(StatEntry {
                name: format!("e9d.{label}.{name}"),
                value,
            });
        }
        eprintln!("  ... E9d publish-log {label} done");
    }

    println!("{}", report.render_table());
    report.save_json(results_dir()).ok();
}
