//! E10 — extension: reclamation concurrent with live writers.
//!
//! Versioning trades overwrite-in-place for snapshots, so something must
//! eventually take the superseded ones back. This experiment measures
//! what that collection costs the writers: an iterative checkpoint burst
//! (halo-overlapped slabs, `KeepLast(2)` retention) runs under three
//! reclamation arms — no GC at all (the storage-growth baseline), a
//! stop-the-world collector that stalls every rank between iterations,
//! and the lease-aware concurrent collector running capped passes beside
//! the writers. Reported per arm: write throughput, worst per-iteration
//! ack latency, bytes reclaimed, and reclaim throughput.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp10_gc`

use atomio_bench::report::{gc_stat_entries, results_dir};
use atomio_bench::{BenchConfig, ExperimentReport, Row};
use atomio_core::{Store, StoreConfig};
use atomio_simgrid::SimClock;
use atomio_types::RetentionPolicy;
use atomio_workloads::{run_checkpoint_with_gc, CheckpointWorkload, GcLoadOutcome, GcMode};

const ITERS: u64 = 6;

fn run_arm(cfg: &BenchConfig, writers: usize, mode: GcMode) -> (GcLoadOutcome, Store) {
    let store = Store::new(
        StoreConfig::default()
            .with_cost(cfg.cost)
            .with_chunk_size(cfg.chunk_size)
            .with_data_providers(cfg.servers)
            .with_meta_shards(cfg.meta_shards)
            .with_retention(RetentionPolicy::KeepLast(2)),
    );
    let blob = store.create_blob();
    // ~2 MiB slab per rank, 64 KiB halos: neighbouring dumps overlap, so
    // every iteration is a real concurrent atomic write round.
    let workload = CheckpointWorkload::new(writers, 256 * 1024, 8, 8 * 1024);
    let clock = SimClock::new();
    let out = run_checkpoint_with_gc(&clock, &blob, &workload, ITERS, mode);
    (out, store)
}

fn main() {
    let cfg = BenchConfig::default();
    let mut report = ExperimentReport::new(
        "E10",
        "concurrent reclamation: write cost of GC beside live writers (KeepLast(2))",
        "writers",
    );
    report.note(format!(
        "{ITERS} checkpoint iterations, 2 MiB slabs + 64 KiB halos, {} providers",
        cfg.servers
    ));

    let arms = [
        (GcMode::Off, "no-gc"),
        (GcMode::StopTheWorld, "stop-the-world"),
        (GcMode::Concurrent, "concurrent"),
    ];
    for &writers in &[1usize, 4, 8, 16] {
        let mut baseline_ack_us = None;
        for (mode, label) in arms {
            let (out, store) = run_arm(&cfg, writers, mode);
            let elapsed_s = out.elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
            report.push(Row {
                x: writers as u64,
                backend: label.into(),
                throughput_mib_s: out.total_bytes as f64 / (1024.0 * 1024.0) / elapsed_s,
                elapsed_s,
                bytes: out.total_bytes,
                atomic_ok: None,
            });
            let ack_us = out.iter_ack_max.as_micros() as f64;
            match mode {
                GcMode::Off => baseline_ack_us = Some(ack_us),
                _ => {
                    let tax = baseline_ack_us
                        .map(|base| (ack_us / base.max(f64::MIN_POSITIVE) - 1.0) * 100.0)
                        .unwrap_or(0.0);
                    report.note(format!(
                        "{label} @ {writers:>2} writers: retired {} versions, reclaimed \
                         {:.1} MiB ({:.1} MiB/s) in {} passes; iteration-latency tax {tax:+.1}%",
                        out.versions_retired,
                        out.bytes_reclaimed as f64 / (1024.0 * 1024.0),
                        out.reclaim_mib_s(),
                        out.gc_passes,
                    ));
                }
            }
            // Representative gc.* counters: the concurrent arm at the
            // widest sweep point.
            if writers == 16 && mode == GcMode::Concurrent {
                report.stats = gc_stat_entries(store.metrics());
            }
        }
        eprintln!("  ... {writers} writers done");
    }

    println!("{}", report.render_table());
    match report.save_json(results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
