//! E12st — extension: sensitivity to storage stragglers.
//!
//! Real clusters are heterogeneous: one slow disk can gate everything
//! that stripes across it. This experiment slows ONE of the 16 storage
//! servers by a factor s ∈ {1, 2, 4, 10} and measures the E1 overlap
//! workload at 16 clients on both backends.
//!
//! Versioning stripes every write over all providers (round-robin), so
//! its aggregate throughput degrades toward the straggler's share; the
//! locking baseline is already serialized by conflicts, so a straggler
//! costs it proportionally less — quantifying a *limit* of the striping
//! principle the paper does not discuss.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp12_stragglers`

use atomio_bench::{ExperimentReport, Row};
use atomio_core::{Store, StoreConfig};
use atomio_mpiio::adio::AdioDriver;
use atomio_mpiio::drivers::{LockingDriver, VersioningDriver};
use atomio_pfs::ParallelFs;
use atomio_simgrid::{CostModel, FaultInjector, Metrics, SimClock};
use atomio_types::ExtentList;
use atomio_workloads::{run_write_round, OverlapWorkload};
use std::sync::Arc;

const SERVERS: usize = 16;
const CLIENTS: usize = 16;

fn slowed(base: CostModel, factor: u64) -> CostModel {
    CostModel {
        disk_bandwidth: base.disk_bandwidth / factor,
        disk_seek: base.disk_seek * factor as u32,
        ..base
    }
}

fn main() {
    let base = CostModel::grid5000();
    let mut report = ExperimentReport::new(
        "E12st",
        "straggler sensitivity: one of 16 servers slowed by s (16 clients, overlap stress)",
        "slowdown",
    );
    report.note("server 0's disk runs at 1/s bandwidth and s x seek latency");

    let workload = OverlapWorkload::new(CLIENTS, 32, 256 * 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..CLIENTS).map(|c| workload.extents_for(c)).collect();

    for &factor in &[1u64, 2, 4, 10] {
        let mut costs = vec![base; SERVERS];
        costs[0] = slowed(base, factor);

        // Versioning backend on the heterogeneous fleet.
        let store = Store::new_heterogeneous(
            StoreConfig::default()
                .with_cost(base)
                .with_chunk_size(256 * 1024)
                .with_data_providers(SERVERS),
            costs.clone(),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 1, false);
        report.push(Row {
            x: factor,
            backend: "versioning".into(),
            throughput_mib_s: out.throughput_mib_s(),
            elapsed_s: out.elapsed.as_secs_f64(),
            bytes: out.total_bytes,
            atomic_ok: None,
        });

        // Locking baseline on the same heterogeneous fleet.
        let fs = ParallelFs::heterogeneous(
            costs,
            base,
            Metrics::new(),
            Arc::new(FaultInjector::default()),
        );
        let driver: Arc<dyn AdioDriver> =
            Arc::new(LockingDriver::new(Arc::new(fs.create_file(256 * 1024))));
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 1, false);
        report.push(Row {
            x: factor,
            backend: "lustre-lock".into(),
            throughput_mib_s: out.throughput_mib_s(),
            elapsed_s: out.elapsed.as_secs_f64(),
            bytes: out.total_bytes,
            atomic_ok: None,
        });
        eprintln!("  ... slowdown {factor}x done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
            report.note(format!("versioning lead at straggler {x:>2}x: {s:.2}x"));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
