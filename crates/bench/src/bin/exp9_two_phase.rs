//! E9 — extension: two-phase collective I/O vs. independent collective
//! writes on the tile workload, for both the versioning backend and the
//! locking baseline.
//!
//! Two-phase aggregation turns each rank's many small strided accesses
//! into a few large contiguous writes by dedicated aggregators — the
//! classic ROMIO optimization. It helps the *locking* baseline most
//! (fewer, disjoint lock acquisitions) and still benefits versioning
//! (fewer chunks and smaller trees per snapshot).
//!
//! Run: `cargo run -p atomio-bench --release --bin exp9_two_phase`

use atomio_bench::{Backend, BenchConfig, ExperimentReport, Row};
use atomio_mpiio::{CollectiveStrategy, Communicator, File, OpenMode};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::ClientId;
use atomio_workloads::TileWorkload;
use std::sync::Arc;

fn main() {
    let cfg = BenchConfig::default();
    let mut report = ExperimentReport::new(
        "E9",
        "collective strategy: independent vs. two-phase aggregation (tile workload)",
        "processes",
    );
    report.note(format!(
        "g x g tiles of 256x256 x 32 B, overlap 2; {} servers; aggregators = servers",
        cfg.servers
    ));

    for g in [2u64, 4, 6, 8] {
        let workload = TileWorkload::new(g, g, 256, 256, 32, 2, 2);
        let ranks = workload.processes();
        for backend in [Backend::Versioning, Backend::LustreLock] {
            for (suffix, strategy) in [
                ("independent", CollectiveStrategy::Independent),
                (
                    "two-phase",
                    CollectiveStrategy::TwoPhase {
                        aggregators: cfg.servers,
                    },
                ),
            ] {
                let (driver, _) = cfg.build(backend);
                let clock = SimClock::new();
                let comm = Communicator::new(ranks, cfg.cost);
                let files: Vec<File> = (0..ranks)
                    .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
                    .collect();
                let start = clock.now();
                run_actors_on(&clock, ranks, |rank, p| {
                    let f = &files[rank];
                    f.set_view(workload.view(rank).expect("valid view"));
                    f.set_atomic(true);
                    f.set_collective(strategy);
                    let stamp = WriteStamp::new(ClientId::new(rank as u64), 1);
                    let payload = stamp.payload_for(&workload.extents_for(rank));
                    f.write_at_all(p, 0, &payload).expect("collective write");
                });
                let elapsed = clock.now() - start;
                let total = workload.bytes_per_process() * ranks as u64;
                report.push(Row {
                    x: ranks as u64,
                    backend: format!("{}+{}", backend.label(), suffix),
                    throughput_mib_s: total as f64
                        / (1024.0 * 1024.0)
                        / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
                    elapsed_s: elapsed.as_secs_f64(),
                    bytes: total,
                    atomic_ok: None,
                });
            }
        }
        eprintln!("  ... {ranks} processes done");
    }

    for x in report.xs() {
        for backend in ["versioning", "lustre-lock"] {
            if let Some(s) = report.speedup_at(
                x,
                &format!("{backend}+two-phase"),
                &format!("{backend}+independent"),
            ) {
                report.note(format!(
                    "two-phase gain on {backend} at {x:>3} procs: {s:.2}x"
                ));
            }
        }
        let _ = x;
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
