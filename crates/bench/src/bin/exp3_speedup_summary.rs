//! E3 — the paper's headline quantitative claim, checked:
//!
//! "It achieved an aggregated throughput ranging from 3.5 times to 10
//! times higher in several experimental setups" (paper, §VI).
//!
//! Reads the JSON produced by E1 and E2 and reports the versioning /
//! lustre-lock speedup for every multi-client configuration, flagging
//! where the measured band sits relative to the paper's 3.5x–10x.
//!
//! Run E1 and E2 first, then:
//! `cargo run -p atomio-bench --release --bin exp3_speedup_summary`

use atomio_bench::report::{results_dir, ExperimentReport};

fn main() {
    let dir = results_dir();
    let mut speedups: Vec<(String, u64, f64)> = Vec::new();
    for id in ["e1", "e2"] {
        let path = dir.join(format!("{id}.json"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!(
                "missing {} — run exp1_scalability / exp2_tile_io first",
                path.display()
            );
            continue;
        };
        let report: ExperimentReport =
            serde_json::from_str(&text).expect("well-formed experiment JSON");
        for x in report.xs() {
            // Single-client points are not a concurrency comparison.
            if x <= 1 {
                continue;
            }
            if let Some(s) = report.speedup_at(x, "versioning", "lustre-lock") {
                speedups.push((report.id.clone(), x, s));
            }
        }
    }

    if speedups.is_empty() {
        eprintln!("no data — nothing to summarize");
        std::process::exit(1);
    }

    println!("== E3 — versioning vs. lustre-lock speedup summary ==");
    println!("   paper claim: 3.5x to 10x across experimental setups\n");
    println!("{:>6} {:>10} {:>10}  band", "exp", "clients", "speedup");
    let mut in_band = 0usize;
    for (id, x, s) in &speedups {
        let marker = if (3.5..=10.0).contains(s) {
            in_band += 1;
            "within paper band"
        } else if *s > 10.0 {
            "above paper band (stronger win)"
        } else {
            "below paper band"
        };
        println!("{id:>6} {x:>10} {s:>9.2}x  {marker}");
    }
    let min = speedups.iter().map(|(_, _, s)| *s).fold(f64::MAX, f64::min);
    let max = speedups.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max);
    println!(
        "\nmeasured band: {min:.2}x – {max:.2}x over {} configurations ({in_band} inside 3.5x–10x)",
        speedups.len()
    );
    println!(
        "the paper's claim reproduces when the measured band overlaps 3.5x–10x: {}",
        if min <= 10.0 && max >= 3.5 {
            "YES"
        } else {
            "NO"
        }
    );
}
