//! E8a/E8b — the host-side write-ahead log ablation: what does
//! `CommitMode::Logged` buy a checkpointing application, and what does
//! it cost in durability lag?
//!
//! * **E8a (virtual time, in-process)** — iterative halo-overlap
//!   checkpoint bursts under grid5000 costs, sweeping writer count with
//!   `CommitMode::Direct` as the ablation baseline. A third arm quarters
//!   the drain bandwidth (network + disk) to show the knob the log
//!   trades on: barrier-ack latency stays at memory speed while the
//!   durability lag stretches with the drain path. Notes carry a
//!   burst-size sweep at 4 writers.
//! * **E8b (wall clock, localhost TCP)** — the same burst against the
//!   full three-service deployment (provider/meta/version servers on
//!   real sockets, mux transport), with providers charging a 100 µs
//!   wall-clock device write per chunk as in E7g. Direct-mode barriers
//!   wait for real socket round trips and device time; Logged-mode
//!   barriers ack from the host log, and the drain pays the sockets
//!   afterwards. Absolute numbers vary with the host; the
//!   direct/logged barrier-ack *ratio* is the result.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp8_wal`

use atomio_bench::report::{results_dir, wal_stat_entries};
use atomio_bench::{ExperimentReport, Row};
use atomio_core::{CommitMode, Store, StoreConfig, TransportMode};
use atomio_mpiio::comm::Communicator;
use atomio_provider::{chunk_store_for, ChunkStore, ProviderManager};
use atomio_rpc::{
    dial, MetaService, ProviderService, RemoteMetaStore, RemoteProvider, RemoteVersionManager,
    RpcConfig, RpcMode, RpcServer, Service, VersionService,
};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::{CostModel, FaultInjector, SimClock};
use atomio_types::stamp::WriteStamp;
use atomio_types::{ClientId, ProviderId};
use atomio_workloads::{run_checkpoint_burst, BurstOutcome, CheckpointWorkload};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xE8;
/// Bytes per domain cell.
const CELL: u64 = 16;
/// Ghost cells on each side of a slab: neighbouring dumps overlap.
const HALO: u64 = 32;
/// Checkpoint iterations per burst.
const ITERS: u64 = 4;

/// grid5000 with the drain path (network + disk) throttled to a
/// quarter: the ablation knob for "how fast can the log drain".
fn slow_drain_cost() -> CostModel {
    let mut cost = CostModel::grid5000();
    cost.net_bandwidth /= 4;
    cost.disk_bandwidth /= 4;
    cost
}

fn virtual_store(cost: CostModel, mode: CommitMode) -> Store {
    Store::new(
        StoreConfig::default()
            .with_cost(cost)
            .with_chunk_size(64 * 1024)
            .with_data_providers(8)
            .with_meta_shards(4)
            .with_commit_mode(mode)
            .with_seed(SEED),
    )
}

/// One virtual-time burst: `writers` ranks dump `cells`-cell slabs for
/// [`ITERS`] iterations. Returns the outcome and the store (for its
/// metrics).
fn virtual_burst(
    cost: CostModel,
    mode: CommitMode,
    writers: usize,
    cells: u64,
) -> (BurstOutcome, Store) {
    let store = virtual_store(cost, mode);
    let blob = store.create_blob();
    let clock = SimClock::new();
    let workload = CheckpointWorkload::new(writers, cells, CELL, HALO);
    let out = run_checkpoint_burst(&clock, &blob, &workload, ITERS);
    (out, store)
}

fn ack_row(x: u64, backend: &str, out: &BurstOutcome) -> Row {
    Row {
        x,
        backend: backend.into(),
        throughput_mib_s: out.total_bytes as f64 / (1 << 20) as f64 / out.ack_elapsed.as_secs_f64(),
        elapsed_s: out.ack_elapsed.as_secs_f64(),
        bytes: out.total_bytes,
        atomic_ok: None,
    }
}

/// Provider service for E8b whose every request costs `device` of
/// *wall-clock* time before the in-memory store runs — the per-chunk
/// device write a real storage node performs (~100 µs is NVMe-class).
/// It is what makes Direct-mode barriers expensive on real sockets, and
/// what the log drain overlaps with the application's next iterations.
#[derive(Debug)]
struct TimedProviderService {
    inner: ProviderService,
    device: Duration,
}

impl Service for TimedProviderService {
    fn handle(
        &self,
        request: atomio_rpc::Request,
        payload: Bytes,
    ) -> (atomio_rpc::Response, Bytes) {
        std::thread::sleep(self.device);
        Service::handle(&self.inner, request, payload)
    }
}

/// A three-service deployment (provider/meta/version servers on
/// ephemeral localhost ports, mux transport) for the wall-clock arm.
struct TcpDeployment {
    _provider_servers: Vec<RpcServer>,
    _meta_server: RpcServer,
    _version_server: RpcServer,
    store: Store,
}

const TCP_CHUNK: u64 = 4096;
const TCP_DEVICE_US: u64 = 100;

fn tcp_store(providers: usize, commit: CommitMode) -> TcpDeployment {
    let config = StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(TCP_CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_seed(SEED)
        .with_transport_mode(TransportMode::Tcp)
        .with_commit_mode(commit);

    let mut provider_servers = Vec::new();
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let hosted = chunk_store_for(
            &atomio_types::BackendConfig::Memory,
            ProviderId::new(i as u64),
            CostModel::zero(),
            &Arc::new(FaultInjector::new(0)),
        )
        .expect("open hosted chunk store");
        let server = RpcServer::start(
            "127.0.0.1:0",
            Arc::new(TimedProviderService {
                inner: ProviderService::from_stores(vec![hosted]),
                device: Duration::from_micros(TCP_DEVICE_US),
            }),
        )
        .expect("bind E8b provider server");
        let transport = dial(
            server.local_addr(),
            RpcMode::Mux,
            RpcConfig::default(),
            None,
        );
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(MetaService::new(config.meta_shards, TCP_CHUNK)),
    )
    .expect("bind E8b meta server");
    let meta_transport = dial(
        meta_server.local_addr(),
        RpcMode::Mux,
        RpcConfig::default(),
        None,
    );

    let version_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(VersionService::new(TCP_CHUNK)) as Arc<dyn Service>,
    )
    .expect("bind E8b version server");
    let version_transport = dial(
        version_server.local_addr(),
        RpcMode::Mux,
        RpcConfig::default(),
        None,
    );

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta).with_version_oracles(move |blob| {
        Arc::new(RemoteVersionManager::new(
            blob.raw(),
            Arc::clone(&version_transport),
        ))
    });

    TcpDeployment {
        _provider_servers: provider_servers,
        _meta_server: meta_server,
        _version_server: version_server,
        store,
    }
}

/// Runs the burst against a TCP-backed store and measures **wall-clock**
/// time to the last barrier ack, then (Logged mode) wall-clock drain
/// time with the log closed. Returns `(ack, drain_lag)`.
fn wall_burst(store: &Store, workload: &CheckpointWorkload, iters: u64) -> (Duration, Duration) {
    let blob = store.create_blob();
    let clock = SimClock::new();
    let n = workload.ranks;
    let comm = Communicator::new(n, CostModel::zero());
    let blob_ref = &blob;
    let comm_ref = &comm;
    let start = std::time::Instant::now();
    run_actors_on(&clock, n, |i, p| {
        let extents = workload.extents_for(i);
        for iter in 0..iters {
            comm_ref.barrier(p);
            let stamp = WriteStamp::new(ClientId::new(i as u64), iter);
            let payload = Bytes::from(stamp.payload_for(&extents));
            blob_ref
                .write_list(p, &extents, payload)
                .expect("E8b write");
            comm_ref.barrier(p);
        }
    });
    let ack = start.elapsed();

    let lag = if let Some(wal) = blob.wal() {
        wal.close();
        let t0 = std::time::Instant::now();
        run_actors_on(&clock, 1, |_, p| blob_ref.wal_drain(p).expect("E8b drain"));
        assert!(wal.first_drain_error().is_none(), "drain replay failed");
        t0.elapsed()
    } else {
        Duration::ZERO
    };

    // Sanity: every dump published exactly once, in both modes.
    let latest = run_actors_on(&clock, 1, |_, p| blob_ref.latest(p).unwrap().version)
        .pop()
        .unwrap();
    assert_eq!(latest.raw(), n as u64 * iters, "all dumps published");
    (ack, lag)
}

fn main() {
    // --- E8a: virtual-time writer sweep -----------------------------------
    let mut virt = ExperimentReport::new(
        "E8a",
        "WAL ablation: checkpoint barrier-ack latency vs. durability lag (virtual time)",
        "writers",
    );
    virt.note(
        "throughput column = checkpoint payload MiB per second of barrier-ack time \
         (grid5000 costs, 256 KiB/rank x 4 iterations, halo overlap); direct = durable \
         at ack, logged = host WAL absorbs the burst and drains in grant order, \
         logged-slowdrain = same log with net+disk drain bandwidth quartered",
    );
    const SWEEP_CELLS: u64 = 16 * 1024; // 256 KiB per rank at 16 B/cell
    type Arm = (&'static str, fn() -> CostModel, CommitMode);
    let arms: [Arm; 3] = [
        ("direct", CostModel::grid5000, CommitMode::Direct),
        ("logged", CostModel::grid5000, CommitMode::Logged),
        ("logged-slowdrain", slow_drain_cost, CommitMode::Logged),
    ];
    for &writers in &[2usize, 4, 8, 16] {
        for (label, cost, mode) in arms {
            let (out, store) = virtual_burst(cost(), mode, writers, SWEEP_CELLS);
            virt.push(ack_row(writers as u64, label, &out));
            if mode == CommitMode::Logged {
                virt.note(format!(
                    "{label} at {writers:>2} writers: drain lag {:.2} ms \
                     (ack {:.2} ms, durable {:.2} ms)",
                    out.drain_lag().as_secs_f64() * 1e3,
                    out.ack_elapsed.as_secs_f64() * 1e3,
                    out.durable_elapsed.as_secs_f64() * 1e3,
                ));
            }
            if writers == 16 && label == "logged" {
                virt.stats = wal_stat_entries(store.metrics());
            }
            eprintln!("  ... E8a {label} {writers} writers done");
        }
    }
    // Burst-size sweep at 4 writers: the ack gain and the lag both scale
    // with the bytes the log absorbs.
    for (label, cells) in [
        ("64 KiB", 4096u64),
        ("256 KiB", 16 * 1024),
        ("1 MiB", 64 * 1024),
    ] {
        let (d, _) = virtual_burst(CostModel::grid5000(), CommitMode::Direct, 4, cells);
        let (l, _) = virtual_burst(CostModel::grid5000(), CommitMode::Logged, 4, cells);
        virt.note(format!(
            "burst {label}/rank at 4 writers: ack direct {:.2} ms vs logged {:.2} ms \
             ({:.1}x), logged drain lag {:.2} ms",
            d.ack_elapsed.as_secs_f64() * 1e3,
            l.ack_elapsed.as_secs_f64() * 1e3,
            d.ack_elapsed.as_secs_f64() / l.ack_elapsed.as_secs_f64(),
            l.drain_lag().as_secs_f64() * 1e3,
        ));
        eprintln!("  ... E8a burst-size {label} done");
    }
    for x in virt.xs() {
        if let Some(s) = virt.speedup_at(x, "logged", "direct") {
            virt.note(format!(
                "logged barrier-ack gain at {x:>2} writers: {s:.2}x"
            ));
        }
    }
    println!("{}", virt.render_table());
    virt.save_json(results_dir()).ok();

    // --- E8b: wall-clock TCP arm ------------------------------------------
    let mut tcp = ExperimentReport::new(
        "E8b",
        "WAL ablation: checkpoint bursts over localhost TCP (three services, wall clock)",
        "writers",
    );
    tcp.note(
        "throughput column = checkpoint payload MiB per second of wall-clock barrier-ack \
         time over the three-service mux deployment (4 providers, 100us device write per \
         chunk, 64 KiB/rank x 4 iterations); direct barriers wait for sockets + device, \
         logged barriers ack from the host log and the drain pays them afterwards; \
         absolute numbers vary with the host, the direct/logged ratio is the result",
    );
    const TCP_CELLS: u64 = 4096; // 64 KiB per rank at 16 B/cell
    for &writers in &[2usize, 4, 8] {
        for (label, mode) in [
            ("direct", CommitMode::Direct),
            ("logged", CommitMode::Logged),
        ] {
            let deployment = tcp_store(4, mode);
            let workload = CheckpointWorkload::new(writers, TCP_CELLS, CELL, HALO);
            let (ack, lag) = wall_burst(&deployment.store, &workload, ITERS);
            let bytes = ITERS * (0..writers).map(|r| workload.bytes_for(r)).sum::<u64>();
            tcp.push(Row {
                x: writers as u64,
                backend: label.into(),
                throughput_mib_s: bytes as f64 / (1 << 20) as f64 / ack.as_secs_f64(),
                elapsed_s: ack.as_secs_f64(),
                bytes,
                atomic_ok: None,
            });
            if mode == CommitMode::Logged {
                tcp.note(format!(
                    "logged at {writers} writers: ack {:.2} ms, drain lag {:.2} ms",
                    ack.as_secs_f64() * 1e3,
                    lag.as_secs_f64() * 1e3,
                ));
                if writers == 8 {
                    tcp.stats = wal_stat_entries(deployment.store.metrics());
                }
            }
            eprintln!("  ... E8b {label} {writers} writers done");
        }
    }
    for x in tcp.xs() {
        if let Some(s) = tcp.speedup_at(x, "logged", "direct") {
            tcp.note(format!("logged barrier-ack gain at {x} writers: {s:.2}x"));
        }
    }
    println!("{}", tcp.render_table());
    tcp.save_json(results_dir()).ok();
}
