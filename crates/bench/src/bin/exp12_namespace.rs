//! E12 — namespace-scale distribution: sharded version service vs the
//! single oracle.
//!
//! The paper's version manager is the one serialized point of the write
//! path. At checkpoint-namespace scale — hundreds of thousands of files,
//! every one its own blob with its own version chain — a single manager
//! process serializes *unrelated* blobs behind one service. This
//! experiment shards the version service by hash slot
//! (`slot(blob) = hash(blob) % 1024`, contiguous slot ranges per shard)
//! and measures aggregate grant throughput as tenants create, write,
//! and read a 131,072-blob multi-tenant namespace concurrently.
//!
//! Arms (x = shard count):
//! * `single-oracle` — today's unsharded `VersionService`, no routing
//!   layer: the baseline every earlier experiment ran against.
//! * `slot-routed` — the same workload through `SlotRoutedTransport`
//!   over N `--shard i/N` services. The 1-shard arm isolates the cost
//!   of the routing layer itself and must leave bit-identical version
//!   chains (checked, reported as `atomic_ok`).
//!
//! Each blob takes one create (its manager materializes on first
//! grant), two ticket+publish rounds, and every 8th blob a latest-read
//! — the mix a restart-heavy checkpoint workload puts on the oracle.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp12_namespace`

use atomio_bench::{ExperimentReport, Row};
use atomio_core::slot_for_blob;
use atomio_meta::NodeKey;
use atomio_rpc::{
    Loopback, RemoteVersionManager, Service, SlotRoutedTransport, Transport, VersionService,
};
use atomio_types::{BlobId, ByteRange};
use std::sync::Arc;
use std::time::Instant;

const CHUNK: u64 = 64 * 1024;
const TENANTS: usize = 8;
const BLOBS_PER_TENANT: u64 = 16 * 1024;
const BLOBS: u64 = TENANTS as u64 * BLOBS_PER_TENANT;
const ROUNDS: u64 = 2;

/// Builds the client transport for an `n`-shard fleet: the raw loopback
/// for the unsharded baseline, the slot router otherwise.
fn fleet(n: usize, routed: bool) -> Arc<dyn Transport> {
    let transports: Vec<Arc<dyn Transport>> = (0..n)
        .map(|i| {
            let mut service = VersionService::new(CHUNK);
            if n > 1 {
                service = service.with_shard(i, n);
            }
            Arc::new(Loopback::new(Arc::new(service) as Arc<dyn Service>)) as Arc<dyn Transport>
        })
        .collect();
    if routed {
        Arc::new(SlotRoutedTransport::new(transports))
    } else {
        assert_eq!(n, 1);
        transports.into_iter().next().unwrap()
    }
}

/// Drives the multi-tenant grant workload and returns (elapsed seconds,
/// chain digest). The digest folds every blob's final `(id, version,
/// size)` through FNV-1a, so two runs with identical version chains —
/// and only those — agree.
fn run_workload(transport: &Arc<dyn Transport>) -> (f64, u64) {
    let start = Instant::now();
    std::thread::scope(|s| {
        for tenant in 0..TENANTS as u64 {
            let transport = Arc::clone(transport);
            s.spawn(move || {
                let lo = tenant * BLOBS_PER_TENANT;
                for blob in lo..lo + BLOBS_PER_TENANT {
                    let vm = RemoteVersionManager::new(blob, Arc::clone(&transport));
                    for _ in 0..ROUNDS {
                        let (ticket, _) = vm.ticket_append(CHUNK).expect("grant");
                        let root = NodeKey::new(
                            BlobId::new(blob),
                            ticket.version,
                            ByteRange::new(0, ticket.capacity),
                        );
                        vm.publish(ticket, root).expect("publish");
                    }
                    if blob % 8 == 0 {
                        vm.latest().expect("read latest");
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for byte in v.to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for blob in 0..BLOBS {
        let vm = RemoteVersionManager::new(blob, Arc::clone(transport));
        let latest = vm.latest().expect("digest read");
        fold(blob);
        fold(latest.version.raw());
        fold(latest.size);
    }
    (elapsed, digest)
}

fn main() {
    let mut report = ExperimentReport::new(
        "E12",
        "namespace-scale distribution: sharded version service vs single oracle \
         (131072 blobs, 8 tenants, grant throughput)",
        "shards",
    );
    report.note(format!(
        "{TENANTS} tenants x {BLOBS_PER_TENANT} blobs, {ROUNDS} ticket+publish rounds per blob, \
         every 8th blob latest-read; loopback transport isolates service-side serialization"
    ));
    let granted_bytes = BLOBS * ROUNDS * CHUNK;

    // Warm-up: the first arm otherwise pays allocator and page-fault
    // cold-start costs the later arms don't, skewing the comparison.
    let _ = run_workload(&fleet(1, false));
    eprintln!("  ... warm-up done");

    let (base_elapsed, base_digest) = run_workload(&fleet(1, false));
    report.push(Row {
        x: 1,
        backend: "single-oracle".into(),
        throughput_mib_s: granted_bytes as f64 / (1024.0 * 1024.0) / base_elapsed,
        elapsed_s: base_elapsed,
        bytes: granted_bytes,
        atomic_ok: None,
    });
    report.note(format!(
        "single-oracle: {:.0} grants/s",
        (BLOBS * ROUNDS) as f64 / base_elapsed
    ));
    eprintln!("  ... single-oracle done ({base_elapsed:.2}s)");

    let mut routed_elapsed = Vec::new();
    for shards in [1usize, 2, 4] {
        let (elapsed, digest) = run_workload(&fleet(shards, true));
        // The 1-shard routed arm must reproduce the single oracle's
        // version chains bit for bit — the routing layer is pure
        // plumbing. (Sharded arms produce the same chains too; the
        // digest is order-insensitive across shards by construction.)
        let identical = digest == base_digest;
        assert!(
            identical,
            "{shards}-shard routing changed the version chains"
        );
        report.push(Row {
            x: shards as u64,
            backend: "slot-routed".into(),
            throughput_mib_s: granted_bytes as f64 / (1024.0 * 1024.0) / elapsed,
            elapsed_s: elapsed,
            bytes: granted_bytes,
            atomic_ok: Some(identical),
        });
        routed_elapsed.push((shards, elapsed));
        eprintln!("  ... slot-routed x{shards} done ({elapsed:.2}s)");
    }

    // Slot balance of the blob population (why 4 shards split evenly).
    let mut per_shard = [0u64; 4];
    let map = atomio_core::SlotMap::uniform(4);
    for blob in 0..BLOBS {
        per_shard[map.group_of(slot_for_blob(blob)).unwrap()] += 1;
    }
    report.note(format!(
        "blob balance across 4 shards: {per_shard:?} of {BLOBS}"
    ));
    for (shards, elapsed) in &routed_elapsed {
        report.note(format!(
            "slot-routed x{shards}: {:.0} grants/s ({:.2}x vs single oracle)",
            (BLOBS * ROUNDS) as f64 / elapsed,
            base_elapsed / elapsed
        ));
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
