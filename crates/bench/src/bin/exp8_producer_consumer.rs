//! E8 — producer–consumer over snapshots (the paper's §VII future-work
//! direction): a simulation streams iterations into the store while
//! visualization consumers read them.
//!
//! Compares the versioned pipeline (producer publishes snapshots;
//! consumers read specific versions, nobody blocks) against the lock
//! -based alternation on a mutable file.
//!
//! Run: `cargo run -p atomio-bench --release --bin exp8_producer_consumer`

use atomio_bench::{BenchConfig, ExperimentReport, Row};
use atomio_core::{Store, StoreConfig};
use atomio_pfs::ParallelFs;
use atomio_simgrid::{Metrics, SimClock};
use atomio_workloads::pc::{run_locked, run_versioned, PcConfig};
use std::sync::Arc;

fn main() {
    let cfg = BenchConfig::default();
    const ITERATIONS: u64 = 16;
    const PAYLOAD: u64 = 4 * 1024 * 1024;

    let mut report = ExperimentReport::new(
        "E8",
        "producer-consumer pipeline: 16 iterations x 4 MiB, versioned vs. locked",
        "consumers",
    );
    report.note("throughput = produced bytes / producer completion time");
    report.note("'atomic ok' = every consumer saw every iteration bit-exact (no lost updates)");

    for &consumers in &[0usize, 1, 2, 4, 8] {
        let pc = PcConfig {
            iterations: ITERATIONS,
            payload_bytes: PAYLOAD,
            consumers,
        };

        // Versioned pipeline.
        let store = Store::new(
            StoreConfig::default()
                .with_cost(cfg.cost)
                .with_chunk_size(cfg.chunk_size)
                .with_data_providers(cfg.servers)
                .with_meta_shards(cfg.meta_shards),
        );
        let blob = store.create_blob();
        let clock = SimClock::new();
        let out = run_versioned(&clock, &blob, pc);
        report.push(Row {
            x: consumers as u64,
            backend: "versioning".into(),
            throughput_mib_s: (ITERATIONS * PAYLOAD) as f64
                / (1024.0 * 1024.0)
                / out.producer_time.as_secs_f64(),
            elapsed_s: out.total_time.as_secs_f64(),
            bytes: ITERATIONS * PAYLOAD,
            atomic_ok: (consumers > 0).then_some(out.verified_iterations == ITERATIONS),
        });

        // Locked pipeline.
        let fs = ParallelFs::new(cfg.servers, cfg.cost, Metrics::new());
        let file = Arc::new(fs.create_file(cfg.chunk_size));
        let clock = SimClock::new();
        let out = run_locked(&clock, &file, pc);
        report.push(Row {
            x: consumers as u64,
            backend: "lock-alternation".into(),
            throughput_mib_s: (ITERATIONS * PAYLOAD) as f64
                / (1024.0 * 1024.0)
                / out.producer_time.as_secs_f64(),
            elapsed_s: out.total_time.as_secs_f64(),
            bytes: ITERATIONS * PAYLOAD,
            atomic_ok: (consumers > 0).then_some(out.verified_iterations == ITERATIONS),
        });
        eprintln!("  ... {consumers} consumers done");
    }

    for x in report.xs() {
        if let Some(s) = report.speedup_at(x, "versioning", "lock-alternation") {
            report.note(format!(
                "producer speedup vs lock-alternation at {x} consumers: {s:.2}x"
            ));
        }
    }

    println!("{}", report.render_table());
    match report.save_json(atomio_bench::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save JSON: {e}"),
    }
}
