//! Backend construction shared by every experiment.
//!
//! All backends are deployed with the **same fleet size, stripe/chunk
//! size, and cost model**, so measured differences come from the
//! concurrency-control strategy alone.

use atomio_core::{Store, StoreConfig};
use atomio_mpiio::adio::AdioDriver;
use atomio_mpiio::drivers::{
    ConflictDetectDriver, LockingDriver, VersioningDriver, WholeFileDriver,
};
use atomio_pfs::ParallelFs;
use atomio_simgrid::{CostModel, Metrics};
use atomio_version::TicketMode;
use std::sync::Arc;

/// The storage strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The paper's proposal: versioning store, native atomic list-I/O.
    Versioning,
    /// Lustre-style covering byte-range locks.
    LustreLock,
    /// Whole-file locking at the MPI-I/O layer (Ross et al.).
    WholeFileLock,
    /// Overlap detection, locking only on conflict (Sehrish et al.).
    ConflictDetect,
    /// PVFS-style: no locks, no atomicity — the raw-bandwidth bound.
    NoLock,
}

impl Backend {
    /// All backends, in report order.
    pub const ALL: [Backend; 5] = [
        Backend::Versioning,
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
        Backend::NoLock,
    ];

    /// The atomic-mode backends the paper's headline compares.
    pub const ATOMIC: [Backend; 4] = [
        Backend::Versioning,
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
    ];

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Versioning => "versioning",
            Backend::LustreLock => "lustre-lock",
            Backend::WholeFileLock => "whole-file-lock",
            Backend::ConflictDetect => "conflict-detect",
            Backend::NoLock => "no-lock (no atomicity)",
        }
    }

    /// Whether writes through this backend request MPI atomic mode.
    pub fn atomic_flag(&self) -> bool {
        !matches!(self, Backend::NoLock)
    }
}

/// Deployment parameters shared across backends in one experiment.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Storage servers (data providers / OSTs).
    pub servers: usize,
    /// Metadata shards (versioning backend only).
    pub meta_shards: usize,
    /// Chunk/stripe size in bytes.
    pub chunk_size: u64,
    /// Hardware prices.
    pub cost: CostModel,
    /// Publication mode (E7 ablation knob; versioning backend only).
    pub ticket_mode: TicketMode,
    /// Seed for placement randomness.
    pub seed: u64,
}

impl Default for BenchConfig {
    /// The paper-scale deployment: 16 storage servers, 4 metadata
    /// shards, 256 KiB stripes, Grid'5000-like prices.
    fn default() -> Self {
        BenchConfig {
            servers: 16,
            meta_shards: 4,
            chunk_size: 256 * 1024,
            cost: CostModel::grid5000(),
            ticket_mode: TicketMode::Pipelined,
            seed: 0xBE7C,
        }
    }
}

impl BenchConfig {
    /// Builds a fresh driver (with its own fresh store/file system) for
    /// `backend`. Returns the driver and the metrics registry of the
    /// underlying deployment.
    pub fn build(&self, backend: Backend) -> (Arc<dyn AdioDriver>, Metrics) {
        match backend {
            Backend::Versioning => {
                let store = Store::new(
                    StoreConfig::default()
                        .with_cost(self.cost)
                        .with_chunk_size(self.chunk_size)
                        .with_data_providers(self.servers)
                        .with_meta_shards(self.meta_shards)
                        .with_ticket_mode(self.ticket_mode)
                        .with_seed(self.seed),
                );
                let metrics = store.metrics().clone();
                (
                    Arc::new(VersioningDriver::new(store.create_blob())),
                    metrics,
                )
            }
            Backend::LustreLock | Backend::NoLock => {
                let metrics = Metrics::new();
                let fs = ParallelFs::new(self.servers, self.cost, metrics.clone());
                (
                    Arc::new(LockingDriver::new(Arc::new(
                        fs.create_file(self.chunk_size),
                    ))),
                    metrics,
                )
            }
            Backend::WholeFileLock => {
                let metrics = Metrics::new();
                let fs = ParallelFs::new(self.servers, self.cost, metrics.clone());
                (
                    Arc::new(WholeFileDriver::new(Arc::new(
                        fs.create_file(self.chunk_size),
                    ))),
                    metrics,
                )
            }
            Backend::ConflictDetect => {
                let metrics = Metrics::new();
                let fs = ParallelFs::new(self.servers, self.cost, metrics.clone());
                (
                    Arc::new(ConflictDetectDriver::new(
                        Arc::new(fs.create_file(self.chunk_size)),
                        self.cost,
                    )),
                    metrics,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors_on;
    use atomio_simgrid::SimClock;
    use atomio_types::{ClientId, ExtentList};
    use bytes::Bytes;

    #[test]
    fn every_backend_builds_and_writes() {
        let cfg = BenchConfig {
            cost: CostModel::zero(),
            ..BenchConfig::default()
        };
        for backend in Backend::ALL {
            let (driver, _) = cfg.build(backend);
            let clock = SimClock::new();
            run_actors_on(&clock, 1, |_, p| {
                let ext = ExtentList::from_pairs([(0u64, 64u64)]);
                driver
                    .write_extents(
                        p,
                        ClientId::new(0),
                        &ext,
                        Bytes::from(vec![7u8; 64]),
                        backend.atomic_flag(),
                    )
                    .unwrap();
                let got = driver
                    .read_extents(p, ClientId::new(0), &ext, false)
                    .unwrap();
                assert_eq!(got, vec![7u8; 64], "{}", backend.label());
            });
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Backend::ALL.iter().map(|b| b.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Backend::ALL.len());
    }

    #[test]
    fn atomic_flags() {
        assert!(Backend::Versioning.atomic_flag());
        assert!(Backend::LustreLock.atomic_flag());
        assert!(!Backend::NoLock.atomic_flag());
    }
}
