//! Model-based property tests for the copy-on-write segment tree.
//!
//! Reference model: a flat byte buffer to which writes are applied in
//! version order. For every prefix of the write sequence, resolving any
//! window through the corresponding tree must yield exactly the model's
//! bytes — including when trees are *built in an arbitrary order* (the
//! forward-reference/deterministic-key property that lets concurrent
//! writers proceed without waiting).

use atomio_meta::history::WriteSummary;
use atomio_meta::{LeafEntry, MetaStore, NodeKey, TreeBuilder, TreeConfig, TreeReader};
use atomio_simgrid::clock::run_actors;
use atomio_simgrid::CostModel;
use atomio_types::{BlobId, ByteRange, ChunkGeometry, ChunkId, ExtentList, ProviderId, VersionId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const LEAF: u64 = 32;
const UNIVERSE: u64 = 1024;

/// One generated write: a set of raw ranges (possibly overlapping; they
/// get normalized) and a fill byte.
#[derive(Debug, Clone)]
struct GenWrite {
    ranges: Vec<(u64, u64)>,
    fill: u8,
}

fn arb_write() -> impl Strategy<Value = GenWrite> {
    (
        proptest::collection::vec((0..UNIVERSE, 1..100u64), 1..6),
        any::<u8>(),
    )
        .prop_map(|(raw, fill)| GenWrite {
            ranges: raw
                .into_iter()
                .map(|(off, len)| (off, len.min(UNIVERSE - off)))
                .filter(|&(_, len)| len > 0)
                .collect(),
            fill,
        })
        .prop_filter("need at least one non-empty range", |w| {
            !w.ranges.is_empty()
        })
}

struct Harness {
    store: MetaStore,
    history: atomio_meta::VersionHistory,
    config: TreeConfig,
    /// chunk id -> payload bytes (the "data providers" of this test).
    chunk_data: HashMap<ChunkId, Vec<u8>>,
    next_chunk: u64,
    roots: Vec<NodeKey>,
    models: Vec<Vec<u8>>, // model state after each version
}

impl Harness {
    fn new() -> Self {
        Harness {
            store: MetaStore::new(4, CostModel::zero()),
            history: atomio_meta::VersionHistory::new(),
            config: TreeConfig::new(LEAF),
            chunk_data: HashMap::new(),
            next_chunk: 0,
            roots: Vec::new(),
            models: vec![vec![0u8; UNIVERSE as usize]],
        }
    }

    /// Registers writes in ticket order, producing per-version entries.
    fn register(&mut self, writes: &[GenWrite]) -> Vec<(VersionId, u64, Vec<LeafEntry>)> {
        let geo = ChunkGeometry::new(LEAF);
        let mut jobs = Vec::new();
        for (i, w) in writes.iter().enumerate() {
            let v = VersionId::new(i as u64 + 1);
            let extents = ExtentList::from_pairs(w.ranges.iter().copied());
            let capacity = self
                .config
                .capacity_for(extents.covering_range().end())
                .max(self.history.capacity_of(VersionId::new(v.raw() - 1)));
            self.history.append(WriteSummary {
                version: v,
                extents: Arc::new(extents.clone()),
                capacity,
            });
            let mut entries = Vec::new();
            for span in geo.split_extents(&extents) {
                let chunk = ChunkId::new(self.next_chunk);
                self.next_chunk += 1;
                self.chunk_data.insert(
                    chunk,
                    [w.fill, w.fill].repeat(span.absolute.len as usize / 2 + 1)
                        [..span.absolute.len as usize]
                        .to_vec(),
                );
                entries.push(LeafEntry {
                    file_range: span.absolute,
                    chunk,
                    chunk_offset: 0,
                    homes: vec![ProviderId::new(0)],
                });
            }
            // Update the model in version order.
            let mut model = self.models.last().unwrap().clone();
            for r in &extents {
                for b in &mut model[r.offset as usize..r.end() as usize] {
                    *b = w.fill;
                }
            }
            self.models.push(model);
            jobs.push((v, capacity, entries));
        }
        jobs
    }

    /// Reads `window` of version `v` via the tree and materializes bytes.
    fn read(&self, p: &atomio_simgrid::Participant, v: usize, window: ByteRange) -> Vec<u8> {
        let root = if v == 0 {
            None
        } else {
            Some(self.roots[v - 1])
        };
        let reader = TreeReader::new(&self.store);
        let pieces = reader
            .resolve(p, root, &ExtentList::single(window))
            .unwrap();
        let mut out = vec![0u8; window.len as usize];
        let mut covered = 0u64;
        for piece in pieces {
            let dst_off = (piece.file_range.offset - window.offset) as usize;
            let dst = &mut out[dst_off..dst_off + piece.file_range.len as usize];
            if let Some(src) = piece.source {
                let data = &self.chunk_data[&src.chunk];
                let lo = src.chunk_offset as usize;
                dst.copy_from_slice(&data[lo..lo + dst.len()]);
            }
            covered += piece.file_range.len;
        }
        assert_eq!(covered, window.len, "pieces must tile the window");
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_reads_match_model_at_every_version(
        writes in proptest::collection::vec(arb_write(), 1..10),
        windows in proptest::collection::vec((0..UNIVERSE, 1..200u64), 1..6),
    ) {
        let mut h = Harness::new();
        let jobs = h.register(&writes);
        run_actors(1, |_, p| {
            let builder = TreeBuilder::new(BlobId::new(0), &h.store, &h.history, h.config);
            for (v, cap, entries) in &jobs {
                let root = builder.build_update(p, *v, *cap, entries).unwrap();
                // roots indexed by version-1; builds here are in order.
                assert_eq!(root.version, *v);
            }
        });
        // Collect roots (deterministic keys make them predictable).
        for (v, cap, _) in &jobs {
            h.roots.push(NodeKey::new(BlobId::new(0), *v, ByteRange::new(0, *cap)));
        }
        run_actors(1, |_, p| {
            for v in 0..=writes.len() {
                for &(off, len) in &windows {
                    let len = len.min(UNIVERSE - off);
                    if len == 0 { continue; }
                    let window = ByteRange::new(off, len);
                    let got = h.read(p, v, window);
                    let want = &h.models[v][off as usize..(off + len) as usize];
                    prop_assert_eq!(&got[..], want, "version {} window {}", v, window);
                }
            }
            Ok(())
        }).0.into_iter().collect::<Result<Vec<_>, _>>()?;
    }

    #[test]
    fn build_order_does_not_matter(
        writes in proptest::collection::vec(arb_write(), 2..8),
        seed in any::<u64>(),
    ) {
        let mut h = Harness::new();
        let mut jobs = h.register(&writes);
        // Shuffle the build order deterministically.
        let rng = atomio_simgrid::DetRng::new(seed);
        rng.shuffle(&mut jobs);
        run_actors(1, |_, p| {
            let builder = TreeBuilder::new(BlobId::new(0), &h.store, &h.history, h.config);
            for (v, cap, entries) in &jobs {
                builder.build_update(p, *v, *cap, entries).unwrap();
            }
        });
        for (i, w) in writes.iter().enumerate() {
            let _ = w;
            let v = VersionId::new(i as u64 + 1);
            let cap = h.history.capacity_of(v);
            h.roots.push(NodeKey::new(BlobId::new(0), v, ByteRange::new(0, cap)));
        }
        // After ALL builds complete, every version must read exactly as
        // the in-order model.
        run_actors(1, |_, p| {
            for v in 1..=writes.len() {
                let got = h.read(p, v, ByteRange::new(0, UNIVERSE));
                prop_assert_eq!(&got[..], &h.models[v][..], "version {}", v);
            }
            Ok(())
        }).0.into_iter().collect::<Result<Vec<_>, _>>()?;
    }
}
