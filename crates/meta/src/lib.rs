//! # atomio-meta
//!
//! Versioning metadata: the copy-on-write (shadowed) segment tree that
//! maps every published snapshot of a blob onto the immutable chunks that
//! hold its bytes. This is the mechanism behind the paper's third design
//! principle — *versioning as a key to enhance data access under
//! concurrency* — and the place where "the ordering is done and the
//! overlappings are resolved" (paper, §IV).
//!
//! ## Structure
//!
//! The byte space of a blob is covered by a binary segment tree over
//! **dyadic ranges**: leaves span `leaf_size` bytes, an inner node spans
//! the union of its two halves. Nodes are immutable and addressed by a
//! **deterministic key** `(version, range)` ([`NodeKey`]); they live in a
//! hash-partitioned [`MetaStore`] (BlobSeer keeps tree nodes in a DHT in
//! exactly this way).
//!
//! ## Shadowing without waiting
//!
//! A writer that was issued ticket `v` builds its tree **without reading
//! any other version's nodes and without waiting for concurrent writers**:
//!
//! * For subtrees it touches, it creates fresh nodes keyed `(v, range)`.
//! * For subtrees it does not touch, it *computes* the link target from
//!   the [`VersionHistory`] of write summaries: the child pointer is
//!   `(u, range)` where `u` is the latest version `< v` whose extents
//!   intersect `range` — whether or not `u` has published yet. Because
//!   keys are deterministic, `u`'s node is guaranteed to exist (or come
//!   into existence) under exactly that key.
//! * A leaf written only partially by `v` carries a `backlink` to the
//!   previous toucher's leaf; readers overlay the chain, so no
//!   read-modify-write of data ever happens.
//!
//! Consequently the only serialized step in the whole write path is the
//! version manager's O(1) publication flip — data transfers *and*
//! metadata builds of concurrent writers fully overlap, which is what
//! gives versioning its throughput advantage over locking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod disk;
pub mod history;
pub mod node;
pub mod store;
pub mod tree;

pub use cache::NodeCache;
pub use disk::{node_store_for, DiskNodeStore};
pub use history::{VersionHistory, WriteSummary};
pub use node::{LeafEntry, Node, NodeBody, NodeKey};
pub use store::{LocalNodeStore, MetaStore, NodeStore};
pub use tree::{MetaCommitMode, MetaReadMode, ResolvedPiece, TreeBuilder, TreeConfig, TreeReader};
