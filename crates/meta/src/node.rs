//! Segment-tree node representation.

use atomio_types::{BlobId, ByteRange, ChunkId, ProviderId, VersionId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Deterministic address of a tree node: the version that created it and
/// the dyadic byte range it covers.
///
/// Determinism is what allows concurrent writers to link to each other's
/// nodes *before those nodes exist*: a writer computes the key of the
/// latest toucher of a range from write summaries alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeKey {
    /// Owning blob (trees of different blobs share one node store, as
    /// BlobSeer's DHT does, so the blob id is part of the key).
    pub blob: BlobId,
    /// Version that created the node.
    pub version: VersionId,
    /// Dyadic byte range the node covers.
    pub range: ByteRange,
}

impl NodeKey {
    /// Creates a key.
    pub fn new(blob: BlobId, version: VersionId, range: ByteRange) -> Self {
        NodeKey {
            blob,
            version,
            range,
        }
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.blob, self.version, self.range)
    }
}

/// One leaf descriptor: a sub-range of the leaf's file space whose bytes
/// live in a stored chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafEntry {
    /// Absolute file range the entry covers (contained in the leaf range).
    pub file_range: ByteRange,
    /// Chunk holding the bytes.
    pub chunk: ChunkId,
    /// Offset of `file_range`'s first byte within the chunk.
    pub chunk_offset: u64,
    /// Providers holding replicas of the chunk, primary first.
    pub homes: Vec<ProviderId>,
}

impl LeafEntry {
    /// Restricts the entry to `window`, adjusting the chunk offset.
    /// Returns `None` when the entry misses the window.
    pub fn clip(&self, window: ByteRange) -> Option<LeafEntry> {
        let cut = self.file_range.intersect(window)?;
        Some(LeafEntry {
            file_range: cut,
            chunk: self.chunk,
            chunk_offset: self.chunk_offset + (cut.offset - self.file_range.offset),
            homes: self.homes.clone(),
        })
    }
}

/// Node payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeBody {
    /// Interior node: links to the subtrees covering each half of the
    /// range. `None` means the half has never been written (reads as
    /// zeros).
    Inner {
        /// Subtree covering the lower half.
        left: Option<NodeKey>,
        /// Subtree covering the upper half.
        right: Option<NodeKey>,
    },
    /// Leaf node: the creating version's own descriptors, plus a link to
    /// the leaf of the previous toucher for bytes this version did not
    /// write.
    Leaf {
        /// This version's descriptors, sorted and disjoint.
        entries: Vec<LeafEntry>,
        /// Leaf of the latest earlier toucher of this leaf range, if any.
        backlink: Option<NodeKey>,
    },
}

// The vendored serde derive handles only named-field structs, so the
// body enum gets a hand-written tagged-object encoding.
impl Serialize for NodeBody {
    fn to_value(&self) -> Value {
        match self {
            NodeBody::Inner { left, right } => Value::Object(vec![
                ("t".to_string(), Value::Str("Inner".to_string())),
                ("left".to_string(), left.to_value()),
                ("right".to_string(), right.to_value()),
            ]),
            NodeBody::Leaf { entries, backlink } => Value::Object(vec![
                ("t".to_string(), Value::Str("Leaf".to_string())),
                ("entries".to_string(), entries.to_value()),
                ("backlink".to_string(), backlink.to_value()),
            ]),
        }
    }
}

impl Deserialize for NodeBody {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.get("t") {
            Some(Value::Str(s)) if s == "Inner" => Ok(NodeBody::Inner {
                left: Option::<NodeKey>::from_value(v.get_or_null("left"))?,
                right: Option::<NodeKey>::from_value(v.get_or_null("right"))?,
            }),
            Some(Value::Str(s)) if s == "Leaf" => Ok(NodeBody::Leaf {
                entries: Vec::<LeafEntry>::from_value(v.get_or_null("entries"))?,
                backlink: Option::<NodeKey>::from_value(v.get_or_null("backlink"))?,
            }),
            _ => Err(DeError::expected("tagged node body", v)),
        }
    }
}

/// An immutable segment-tree node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's deterministic address.
    pub key: NodeKey,
    /// Interior links or leaf descriptors.
    pub body: NodeBody,
}

impl NodeKey {
    /// Serialized size of a key on the wire: blob id (8) + version (8) +
    /// range offset and length (8 + 8).
    pub const WIRE_SIZE: u64 = 32;
}

impl Node {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.body, NodeBody::Leaf { .. })
    }

    /// Approximate serialized size of the node in bytes — what crosses
    /// the simulated network when the node is shipped to or from a
    /// metadata shard. Inner nodes carry their key plus two optional
    /// child keys; leaves carry their key, an optional backlink key, and
    /// per-entry descriptors (file range 16, chunk id 8, chunk offset 8,
    /// home count 8, 8 per home).
    pub fn wire_size(&self) -> u64 {
        NodeKey::WIRE_SIZE
            + match &self.body {
                NodeBody::Inner { .. } => 2 * (1 + NodeKey::WIRE_SIZE),
                NodeBody::Leaf { entries, .. } => {
                    1 + NodeKey::WIRE_SIZE
                        + entries
                            .iter()
                            .map(|e| 40 + 8 * e.homes.len() as u64)
                            .sum::<u64>()
                }
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(off: u64, len: u64, chunk: u64, chunk_off: u64) -> LeafEntry {
        LeafEntry {
            file_range: ByteRange::new(off, len),
            chunk: ChunkId::new(chunk),
            chunk_offset: chunk_off,
            homes: vec![ProviderId::new(0)],
        }
    }

    #[test]
    fn clip_inside() {
        let e = entry(100, 50, 7, 0);
        let c = e.clip(ByteRange::new(110, 20)).unwrap();
        assert_eq!(c.file_range, ByteRange::new(110, 20));
        assert_eq!(c.chunk_offset, 10);
        assert_eq!(c.chunk, ChunkId::new(7));
    }

    #[test]
    fn clip_partial_overlap() {
        let e = entry(100, 50, 7, 5);
        let c = e.clip(ByteRange::new(140, 100)).unwrap();
        assert_eq!(c.file_range, ByteRange::new(140, 10));
        assert_eq!(c.chunk_offset, 5 + 40);
    }

    #[test]
    fn clip_miss() {
        let e = entry(100, 50, 7, 0);
        assert!(e.clip(ByteRange::new(200, 10)).is_none());
        assert!(e.clip(ByteRange::empty()).is_none());
    }

    #[test]
    fn node_kind_predicates() {
        let leaf = Node {
            key: NodeKey::new(BlobId::new(0), VersionId::new(1), ByteRange::new(0, 64)),
            body: NodeBody::Leaf {
                entries: vec![],
                backlink: None,
            },
        };
        assert!(leaf.is_leaf());
        let inner = Node {
            key: NodeKey::new(BlobId::new(0), VersionId::new(1), ByteRange::new(0, 128)),
            body: NodeBody::Inner {
                left: None,
                right: None,
            },
        };
        assert!(!inner.is_leaf());
    }

    #[test]
    fn wire_size_tracks_shape() {
        let key = NodeKey::new(BlobId::new(0), VersionId::new(1), ByteRange::new(0, 128));
        let inner = Node {
            key,
            body: NodeBody::Inner {
                left: None,
                right: None,
            },
        };
        assert_eq!(inner.wire_size(), 32 + 2 * 33);
        let leaf = Node {
            key,
            body: NodeBody::Leaf {
                entries: vec![entry(0, 64, 1, 0), entry(64, 64, 2, 0)],
                backlink: None,
            },
        };
        // Key + backlink slot + 2 entries with one home each.
        assert_eq!(leaf.wire_size(), 32 + 33 + 2 * 48);
        let empty = Node {
            key,
            body: NodeBody::Leaf {
                entries: vec![],
                backlink: None,
            },
        };
        assert!(empty.wire_size() < leaf.wire_size());
    }

    #[test]
    fn nodes_roundtrip_through_wire_encoding() {
        let key = NodeKey::new(BlobId::new(7), VersionId::new(3), ByteRange::new(0, 128));
        let inner = Node {
            key,
            body: NodeBody::Inner {
                left: Some(NodeKey::new(
                    BlobId::new(7),
                    VersionId::new(2),
                    ByteRange::new(0, 64),
                )),
                right: None,
            },
        };
        assert_eq!(Node::from_value(&inner.to_value()).unwrap(), inner);
        let leaf = Node {
            key,
            body: NodeBody::Leaf {
                entries: vec![entry(0, 64, 9, 16)],
                backlink: Some(key),
            },
        };
        assert_eq!(Node::from_value(&leaf.to_value()).unwrap(), leaf);
    }

    #[test]
    fn key_display() {
        let k = NodeKey::new(BlobId::new(7), VersionId::new(3), ByteRange::new(0, 64));
        assert_eq!(k.to_string(), "(blob-7, v3, [0, 64))");
    }
}
