//! The distributed metadata store: hash-partitioned node shards.
//!
//! BlobSeer keeps segment-tree nodes in a DHT spread over metadata
//! providers; here each shard is a virtual-time CPU resource in front of a
//! node table. Hash partitioning spreads one writer's node puts over all
//! shards, so concurrent writers' metadata work overlaps instead of
//! queueing on a single server.

use crate::node::{Node, NodeKey};
use atomio_simgrid::{CostModel, Participant, Resource};
use atomio_types::{stamp::mix64, Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A hash-partitioned store of immutable tree nodes.
#[derive(Debug)]
pub struct MetaStore {
    shards: Vec<Shard>,
    cost: CostModel,
}

#[derive(Debug)]
struct Shard {
    cpu: Resource,
    nodes: RwLock<HashMap<NodeKey, Arc<Node>>>,
}

impl MetaStore {
    /// Creates a store with `shards` metadata providers.
    pub fn new(shards: usize, cost: CostModel) -> Self {
        assert!(shards > 0, "need at least one metadata shard");
        MetaStore {
            shards: (0..shards)
                .map(|i| Shard {
                    cpu: Resource::new(format!("meta-shard-{i}/cpu")),
                    nodes: RwLock::new(HashMap::new()),
                })
                .collect(),
            cost,
        }
    }

    fn shard_for(&self, key: NodeKey) -> &Shard {
        let h = mix64(
            key.version.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ key.blob.raw().wrapping_mul(0x94D0_49BB_1331_11EB)
                ^ key.range.offset.rotate_left(17)
                ^ key.range.len,
        );
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Stores a node under its deterministic key.
    ///
    /// Publishing the same node twice is idempotent; publishing a
    /// *different* node under an existing key indicates a broken
    /// determinism invariant and fails.
    pub fn put(&self, p: &Participant, node: Node) -> Result<()> {
        let shard = self.shard_for(node.key);
        p.sleep(self.cost.rpc_round_trip());
        shard.cpu.serve(p, self.cost.meta_op);
        let mut nodes = shard.nodes.write();
        if let Some(existing) = nodes.get(&node.key) {
            if **existing != node {
                return Err(Error::Internal(format!(
                    "conflicting node published under {}",
                    node.key
                )));
            }
            return Ok(());
        }
        nodes.insert(node.key, Arc::new(node));
        Ok(())
    }

    /// Fetches a node by key.
    pub fn get(&self, p: &Participant, key: NodeKey) -> Result<Arc<Node>> {
        let shard = self.shard_for(key);
        p.sleep(self.cost.rpc_round_trip());
        shard.cpu.serve(p, self.cost.meta_op);
        shard
            .nodes
            .read()
            .get(&key)
            .cloned()
            .ok_or(Error::MetadataNodeMissing(
                key.range.offset ^ key.version.raw(),
            ))
    }

    /// True if the node exists (free of simulated cost; for tests/GC).
    pub fn contains(&self, key: NodeKey) -> bool {
        self.shard_for(key).nodes.read().contains_key(&key)
    }

    /// Total nodes stored across all shards.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.read().len()).sum()
    }

    /// Removes a node (version GC). Missing keys are ignored.
    pub fn evict(&self, key: NodeKey) {
        self.shard_for(key).nodes.write().remove(&key);
    }

    /// Per-shard node counts (for distribution tests).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.nodes.read().len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBody;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::{ByteRange, VersionId};

    fn node(v: u64, off: u64, len: u64) -> Node {
        Node {
            key: NodeKey::new(
                atomio_types::BlobId::new(0),
                VersionId::new(v),
                ByteRange::new(off, len),
            ),
            body: NodeBody::Inner {
                left: None,
                right: None,
            },
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let store = MetaStore::new(4, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64))?;
            store.get(
                p,
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(1),
                    ByteRange::new(0, 64),
                ),
            )
        });
        assert_eq!(*res[0].as_ref().unwrap().as_ref(), node(1, 0, 64));
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn idempotent_put_allowed_conflict_rejected() {
        let store = MetaStore::new(2, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64))?;
            store.put(p, node(1, 0, 64))?; // same node again: fine
            let mut different = node(1, 0, 64);
            different.body = NodeBody::Leaf {
                entries: vec![],
                backlink: None,
            };
            store.put(p, different)
        });
        assert!(matches!(res[0], Err(Error::Internal(_))));
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn missing_node_errors() {
        let store = MetaStore::new(2, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.get(
                p,
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(9),
                    ByteRange::new(0, 64),
                ),
            )
        });
        assert!(matches!(res[0], Err(Error::MetadataNodeMissing(_))));
    }

    #[test]
    fn eviction_removes() {
        let store = MetaStore::new(2, CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64)).unwrap();
        });
        let key = NodeKey::new(
            atomio_types::BlobId::new(0),
            VersionId::new(1),
            ByteRange::new(0, 64),
        );
        assert!(store.contains(key));
        store.evict(key);
        assert!(!store.contains(key));
        store.evict(key); // idempotent
    }

    #[test]
    fn keys_spread_over_shards() {
        let store = MetaStore::new(8, CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            for v in 1..=16u64 {
                for i in 0..16u64 {
                    store.put(p, node(v, i * 64, 64)).unwrap();
                }
            }
        });
        let loads = store.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 256);
        // No shard should be empty or hold more than half the nodes.
        for &l in &loads {
            assert!(l > 0, "empty shard: {loads:?}");
            assert!(l < 128, "hot shard: {loads:?}");
        }
    }

    #[test]
    fn meta_ops_cost_time() {
        let cost = CostModel::grid5000();
        let store = MetaStore::new(1, cost);
        let (_, total) = run_actors(1, |_, p| {
            for i in 0..10 {
                store.put(p, node(1, i * 64, 64)).unwrap();
            }
        });
        // 10 puts × (RPC + meta_op).
        let expect = (cost.rpc_round_trip() + cost.meta_op) * 10;
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_shards_rejected() {
        let _ = MetaStore::new(0, CostModel::zero());
    }
}
