//! The distributed metadata store: hash-partitioned node shards.
//!
//! BlobSeer keeps segment-tree nodes in a DHT spread over metadata
//! providers; here each shard is a virtual-time CPU resource in front of a
//! node table. Hash partitioning spreads one writer's node puts over all
//! shards, so concurrent writers' metadata work overlaps instead of
//! queueing on a single server.
//!
//! **The API is batch-first**, mirroring the provider side
//! (`ProviderManager::put_batch_replicated` / `get_batch_with_failover`):
//! [`MetaStore::put_batch`] and [`MetaStore::get_batch`] are the canonical
//! entry points; single-node [`MetaStore::put`] / [`MetaStore::get`] are
//! thin one-element wrappers. A batch pays **one** overlapped RPC offset,
//! serializes node payloads through the calling client's NIC, and lands
//! on each shard as a **single list-request booking** via
//! [`Resource::reserve_ns`] — the List-I/O lesson applied to metadata.

use crate::node::{Node, NodeKey};
use atomio_simgrid::{ClientNics, CostModel, Participant, Resource};
use atomio_types::{stamp::mix64, Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// The interface tree builders and readers consume to store and fetch
/// nodes. [`MetaStore`] is the in-process implementation; an RPC client
/// talking to a remote metadata server implements the same trait, so the
/// whole metadata path is transport-agnostic.
///
/// Batch operations are canonical (mirroring [`MetaStore`]); `put`/`get`
/// are provided one-element wrappers.
pub trait NodeStore: Send + Sync + std::fmt::Debug {
    /// Stores a batch of nodes; one outcome per node, in order.
    fn put_batch(&self, p: &Participant, nodes: Vec<Node>) -> Vec<Result<()>>;

    /// Fetches a batch of nodes; one outcome per key, in order.
    fn get_batch(&self, p: &Participant, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>>;

    /// Stores one node.
    fn put(&self, p: &Participant, node: Node) -> Result<()> {
        self.put_batch(p, vec![node])
            .pop()
            .expect("one outcome per node")
    }

    /// Fetches one node.
    fn get(&self, p: &Participant, key: NodeKey) -> Result<Arc<Node>> {
        self.get_batch(p, &[key])
            .pop()
            .expect("one outcome per key")
    }

    /// True if the node exists (free of simulated cost; for tests/GC).
    fn contains(&self, key: NodeKey) -> bool;

    /// Total nodes stored.
    fn node_count(&self) -> usize;

    /// Removes a node (version GC). Missing keys are ignored.
    fn evict(&self, key: NodeKey);

    /// Removes a batch of nodes, returning how many were present — the
    /// GC sweep's unit of work. The default loops over [`Self::evict`];
    /// remote proxies override it with a single batched RPC.
    fn evict_batch(&self, keys: &[NodeKey]) -> u64 {
        let mut evicted = 0;
        for &key in keys {
            if self.contains(key) {
                evicted += 1;
            }
            self.evict(key);
        }
        evicted
    }

    /// Every stored key, in unspecified order (for equivalence checks
    /// and GC sweeps).
    fn list_keys(&self) -> Vec<NodeKey>;
}

/// A [`NodeStore`] that can also serve **participant-free** batch calls
/// — the server-side halves network services dispatch into, where no
/// simulated clock exists and the wire itself is the cost model.
/// Implemented by [`MetaStore`] and its durable twin
/// [`DiskNodeStore`](crate::disk::DiskNodeStore), which is what lets a
/// metadata server host either backend behind one handler.
pub trait LocalNodeStore: NodeStore {
    /// Stores a batch without booking any simulated cost.
    fn put_batch_local(&self, nodes: Vec<Node>) -> Vec<Result<()>>;

    /// Fetches a batch without booking any simulated cost.
    fn get_batch_local(&self, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>>;
}

/// A hash-partitioned store of immutable tree nodes.
#[derive(Debug)]
pub struct MetaStore {
    shards: Vec<Shard>,
    cost: CostModel,
    /// Per-client NICs serializing batch injections/receptions — shared
    /// with the data path when the deployment wires it so (one client,
    /// one link).
    nics: Arc<ClientNics>,
}

#[derive(Debug)]
struct Shard {
    cpu: Resource,
    nodes: RwLock<HashMap<NodeKey, Arc<Node>>>,
}

impl MetaStore {
    /// Creates a store with `shards` metadata providers and its own
    /// client-NIC registry.
    pub fn new(shards: usize, cost: CostModel) -> Self {
        Self::with_client_nics(shards, cost, Arc::new(ClientNics::new()))
    }

    /// Creates a store that books client traffic on an existing NIC
    /// registry (shared with the data path, so one client's chunk and
    /// node streams contend for the same link).
    pub fn with_client_nics(shards: usize, cost: CostModel, nics: Arc<ClientNics>) -> Self {
        assert!(shards > 0, "need at least one metadata shard");
        MetaStore {
            shards: (0..shards)
                .map(|i| Shard {
                    cpu: Resource::new(format!("meta-shard-{i}/cpu")),
                    nodes: RwLock::new(HashMap::new()),
                })
                .collect(),
            cost,
            nics,
        }
    }

    /// The per-client NIC registry this store books traffic on.
    pub fn client_nics(&self) -> &Arc<ClientNics> {
        &self.nics
    }

    pub(crate) fn shard_index(&self, key: NodeKey) -> usize {
        let h = mix64(
            key.version.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ key.blob.raw().wrapping_mul(0x94D0_49BB_1331_11EB)
                ^ key.range.offset.rotate_left(17)
                ^ key.range.len,
        );
        (h % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, key: NodeKey) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    /// Inserts one node into its shard's table (the zero-time half of a
    /// put, applied after the batch's virtual time has been paid).
    fn install(&self, node: Node) -> Result<()> {
        let shard = self.shard_for(node.key);
        let mut nodes = shard.nodes.write();
        if let Some(existing) = nodes.get(&node.key) {
            if **existing != node {
                return Err(Error::Internal(format!(
                    "conflicting node published under {}",
                    node.key
                )));
            }
            return Ok(());
        }
        nodes.insert(node.key, Arc::new(node));
        Ok(())
    }

    /// Stores a batch of nodes, shard-parallel — **the canonical node
    /// write path** (single-node [`Self::put`] delegates here).
    ///
    /// Cost model, mirroring `ProviderManager::put_batch_replicated`: the
    /// RPC round trips of the whole batch overlap (one latency offset for
    /// all requests); each node's payload then serializes through the
    /// calling client's NIC in batch order; nodes bound for the same
    /// shard form **one list-request** — a single
    /// [`Resource::reserve_ns`] booking of `group_len × meta_op` that
    /// starts when the group's first payload has arrived (cut-through)
    /// — and the client sleeps exactly once, to the latest completion
    /// across shards and injections.
    ///
    /// Returns one outcome per node, in order. Publishing the same node
    /// twice is idempotent; publishing a *different* node under an
    /// existing key indicates a broken determinism invariant and fails
    /// for that slot.
    pub fn put_batch(&self, p: &Participant, nodes: Vec<Node>) -> Vec<Result<()>> {
        if nodes.is_empty() {
            return Vec::new();
        }
        let nic = self.nics.nic_for(p);
        let now = p.now_ns();
        let arrival = now + self.cost.rpc_round_trip().as_nanos() as u64;
        let meta_ns = self.cost.meta_op.as_nanos() as u64;

        // Injection: node payloads leave the client back to back.
        let inj_done: Vec<u64> = nodes
            .iter()
            .map(|n| {
                nic.reserve_ns(
                    arrival,
                    self.cost.net_transfer(n.wire_size()).as_nanos() as u64,
                )
            })
            .collect();

        // One booking per shard for its whole group.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, node) in nodes.iter().enumerate() {
            groups[self.shard_index(node.key)].push(i);
        }
        let mut latest = *inj_done.last().expect("non-empty batch");
        for (s, group) in groups.iter().enumerate() {
            let (Some(&first), Some(&last)) = (group.first(), group.last()) else {
                continue;
            };
            let done = self.shards[s]
                .cpu
                .reserve_ns(inj_done[first], meta_ns * group.len() as u64);
            // The list-op cannot complete before its last member arrived.
            latest = latest.max(done).max(inj_done[last]);
        }
        p.sleep_until_ns(latest);

        nodes.into_iter().map(|n| self.install(n)).collect()
    }

    /// Fetches a batch of nodes, shard-parallel — the canonical node
    /// read path (single-node [`Self::get`] delegates here).
    ///
    /// The mirror image of [`Self::put_batch`]: all requests share one
    /// overlapped RPC offset, each shard serves its group as a single
    /// list-request booking, and found nodes' payloads serialize back
    /// through the client's NIC. The caller sleeps once, to the latest
    /// reception. Returns one outcome per key, in order; missing keys
    /// yield [`Error::MetadataNodeMissing`] and ship no payload.
    pub fn get_batch(&self, p: &Participant, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        if keys.is_empty() {
            return Vec::new();
        }
        let nic = self.nics.nic_for(p);
        let now = p.now_ns();
        let arrival = now + self.cost.rpc_round_trip().as_nanos() as u64;
        let meta_ns = self.cost.meta_op.as_nanos() as u64;

        // One lookup booking per shard; requests are control-sized and
        // are covered by the overlapped RPC offset.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &key) in keys.iter().enumerate() {
            groups[self.shard_index(key)].push(i);
        }
        let mut shard_done = vec![arrival; self.shards.len()];
        for (s, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            shard_done[s] = self.shards[s]
                .cpu
                .reserve_ns(arrival, meta_ns * group.len() as u64);
        }

        // Reception: found nodes stream back through the client NIC in
        // batch order.
        let mut latest = now;
        let outcomes: Vec<Result<Arc<Node>>> = keys
            .iter()
            .map(|&key| {
                let s = self.shard_index(key);
                latest = latest.max(shard_done[s]);
                let found = self.shards[s].nodes.read().get(&key).cloned();
                match found {
                    Some(node) => {
                        let net_ns = self.cost.net_transfer(node.wire_size()).as_nanos() as u64;
                        latest = latest.max(nic.reserve_ns(shard_done[s], net_ns));
                        Ok(node)
                    }
                    None => Err(Error::MetadataNodeMissing(
                        key.range.offset ^ key.version.raw(),
                    )),
                }
            })
            .collect();
        p.sleep_until_ns(latest);
        outcomes
    }

    /// Stores one node: a one-element [`Self::put_batch`].
    pub fn put(&self, p: &Participant, node: Node) -> Result<()> {
        self.put_batch(p, vec![node])
            .pop()
            .expect("one outcome per node")
    }

    /// Fetches one node: a one-element [`Self::get_batch`].
    pub fn get(&self, p: &Participant, key: NodeKey) -> Result<Arc<Node>> {
        self.get_batch(p, &[key])
            .pop()
            .expect("one outcome per key")
    }

    /// True if the node exists (free of simulated cost; for tests/GC).
    pub fn contains(&self, key: NodeKey) -> bool {
        self.shard_for(key).nodes.read().contains_key(&key)
    }

    /// Total nodes stored across all shards.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.read().len()).sum()
    }

    /// Removes a node (version GC). Missing keys are ignored.
    pub fn evict(&self, key: NodeKey) {
        self.shard_for(key).nodes.write().remove(&key);
    }

    /// Per-shard node counts (for distribution tests).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.nodes.read().len()).collect()
    }

    /// Every stored key, in unspecified order.
    pub fn list_keys(&self) -> Vec<NodeKey> {
        self.shards
            .iter()
            .flat_map(|s| s.nodes.read().keys().copied().collect::<Vec<_>>())
            .collect()
    }

    // -----------------------------------------------------------------
    // Participant-free entry points for network servers. A TCP server
    // thread has no simulated clock; the wire itself is the cost model.
    // -----------------------------------------------------------------

    /// Stores a batch without booking any simulated cost (server-side
    /// half of a remote put).
    pub fn put_batch_local(&self, nodes: Vec<Node>) -> Vec<Result<()>> {
        nodes.into_iter().map(|n| self.install(n)).collect()
    }

    /// Fetches a batch without booking any simulated cost (server-side
    /// half of a remote get).
    pub fn get_batch_local(&self, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        keys.iter()
            .map(|&key| {
                self.shard_for(key).nodes.read().get(&key).cloned().ok_or(
                    Error::MetadataNodeMissing(key.range.offset ^ key.version.raw()),
                )
            })
            .collect()
    }
}

impl LocalNodeStore for MetaStore {
    fn put_batch_local(&self, nodes: Vec<Node>) -> Vec<Result<()>> {
        MetaStore::put_batch_local(self, nodes)
    }

    fn get_batch_local(&self, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        MetaStore::get_batch_local(self, keys)
    }
}

impl NodeStore for MetaStore {
    fn put_batch(&self, p: &Participant, nodes: Vec<Node>) -> Vec<Result<()>> {
        MetaStore::put_batch(self, p, nodes)
    }

    fn get_batch(&self, p: &Participant, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        MetaStore::get_batch(self, p, keys)
    }

    fn contains(&self, key: NodeKey) -> bool {
        MetaStore::contains(self, key)
    }

    fn node_count(&self) -> usize {
        MetaStore::node_count(self)
    }

    fn evict(&self, key: NodeKey) {
        MetaStore::evict(self, key)
    }

    fn list_keys(&self) -> Vec<NodeKey> {
        MetaStore::list_keys(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBody;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::{ByteRange, VersionId};

    fn node(v: u64, off: u64, len: u64) -> Node {
        Node {
            key: NodeKey::new(
                atomio_types::BlobId::new(0),
                VersionId::new(v),
                ByteRange::new(off, len),
            ),
            body: NodeBody::Inner {
                left: None,
                right: None,
            },
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let store = MetaStore::new(4, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64))?;
            store.get(
                p,
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(1),
                    ByteRange::new(0, 64),
                ),
            )
        });
        assert_eq!(*res[0].as_ref().unwrap().as_ref(), node(1, 0, 64));
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn idempotent_put_allowed_conflict_rejected() {
        let store = MetaStore::new(2, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64))?;
            store.put(p, node(1, 0, 64))?; // same node again: fine
            let mut different = node(1, 0, 64);
            different.body = NodeBody::Leaf {
                entries: vec![],
                backlink: None,
            };
            store.put(p, different)
        });
        assert!(matches!(res[0], Err(Error::Internal(_))));
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn missing_node_errors() {
        let store = MetaStore::new(2, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.get(
                p,
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(9),
                    ByteRange::new(0, 64),
                ),
            )
        });
        assert!(matches!(res[0], Err(Error::MetadataNodeMissing(_))));
    }

    #[test]
    fn eviction_removes() {
        let store = MetaStore::new(2, CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64)).unwrap();
        });
        let key = NodeKey::new(
            atomio_types::BlobId::new(0),
            VersionId::new(1),
            ByteRange::new(0, 64),
        );
        assert!(store.contains(key));
        store.evict(key);
        assert!(!store.contains(key));
        store.evict(key); // idempotent
    }

    #[test]
    fn keys_spread_over_shards() {
        let store = MetaStore::new(8, CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            for v in 1..=16u64 {
                for i in 0..16u64 {
                    store.put(p, node(v, i * 64, 64)).unwrap();
                }
            }
        });
        let loads = store.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 256);
        // No shard should be empty or hold more than half the nodes.
        for &l in &loads {
            assert!(l > 0, "empty shard: {loads:?}");
            assert!(l < 128, "hot shard: {loads:?}");
        }
    }

    #[test]
    fn meta_ops_cost_time() {
        let cost = CostModel::grid5000();
        let store = MetaStore::new(1, cost);
        let (_, total) = run_actors(1, |_, p| {
            for i in 0..10 {
                store.put(p, node(1, i * 64, 64)).unwrap();
            }
        });
        // 10 one-element batches × (RPC + node wire transfer + meta_op).
        let wire = cost.net_transfer(node(1, 0, 64).wire_size());
        let expect = (cost.rpc_round_trip() + wire + cost.meta_op) * 10;
        assert_eq!(total, expect);
    }

    #[test]
    fn batched_put_is_shard_parallel() {
        let cost = CostModel::grid5000();
        let store = MetaStore::new(4, cost);
        let nodes: Vec<Node> = (0..32).map(|i| node(1, i * 64, 64)).collect();
        let wire = cost.net_transfer(nodes[0].wire_size());
        // Expected: one overlapped RPC, injections back to back, one
        // list-op per shard starting at its first member's arrival.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for (i, n) in nodes.iter().enumerate() {
            groups[store.shard_index(n.key)].push(i);
        }
        let mut expect = cost.rpc_round_trip() + wire * 32;
        for g in &groups {
            if let Some(&first) = g.first() {
                expect = expect.max(
                    cost.rpc_round_trip()
                        + wire * (first as u32 + 1)
                        + cost.meta_op * g.len() as u32,
                );
            }
        }
        let batch = nodes.clone();
        let (res, total) = run_actors(1, move |_, p| {
            store
                .put_batch(p, batch.clone())
                .into_iter()
                .collect::<Result<Vec<_>>>()
        });
        assert!(res[0].is_ok());
        assert_eq!(total, expect);
        // Far below the serial cost of 32 × (RPC + wire + meta_op).
        assert!(total < (cost.rpc_round_trip() + wire + cost.meta_op) * 32);
    }

    #[test]
    fn get_batch_reports_misses_per_slot() {
        let store = MetaStore::new(2, CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            store.put(p, node(1, 0, 64)).unwrap();
            let keys = [
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(1),
                    ByteRange::new(0, 64),
                ),
                NodeKey::new(
                    atomio_types::BlobId::new(0),
                    VersionId::new(9),
                    ByteRange::new(0, 64),
                ),
            ];
            store.get_batch(p, &keys)
        });
        assert!(res[0][0].is_ok());
        assert!(matches!(res[0][1], Err(Error::MetadataNodeMissing(_))));
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let store = MetaStore::new(2, CostModel::grid5000());
        let (_, total) = run_actors(1, |_, p| {
            assert!(store.put_batch(p, Vec::new()).is_empty());
            assert!(store.get_batch(p, &[]).is_empty());
        });
        assert_eq!(total, std::time::Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_shards_rejected() {
        let _ = MetaStore::new(0, CostModel::zero());
    }
}
