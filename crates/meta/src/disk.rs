//! The durable metadata store: a [`MetaStore`] with per-shard node logs.
//!
//! `DiskNodeStore` wraps the in-memory [`MetaStore`] — which keeps doing
//! all virtual-time cost booking and serving every read, so lookup
//! latency is backend-invariant — and mirrors each accepted node into an
//! append-only log on disk:
//!
//! ```text
//! <dir>/superblock            format version, shard count, role tag
//! <dir>/shards/000/000.log    framed NODE / EVICT records of shard 0
//! <dir>/shards/001/000.log    …
//! ```
//!
//! A node's log file is chosen by the **same hash** that picks its
//! in-memory shard, so every record affecting one key lands in one file
//! in operation order. Nodes are immutable (idempotent re-puts are
//! filtered by a logged-key set, conflicts never reach the log), so the
//! log needs no updates-in-place and recovery is a pure replay:
//! truncate any torn tail, then feed surviving `NODE` records back
//! through [`MetaStore::put_batch_local`] and apply `EVICT`s in order.

use crate::node::{LeafEntry, Node, NodeBody, NodeKey};
use crate::store::{LocalNodeStore, MetaStore, NodeStore};
use atomio_simgrid::{ClientNics, CostModel, Participant};
use atomio_types::record::{append_record, load_or_init_superblock, scan_records, ByteReader};
use atomio_types::{BlobId, ByteRange, ChunkId, Error, FsyncPolicy, ProviderId, Result, VersionId};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Log record: a stored node (key + body, self-contained).
const REC_NODE: u8 = 1;
/// Log record: an eviction (key only).
const REC_EVICT: u8 = 2;

/// Superblock tag marking a directory as a metadata node log. The shard
/// count is carried in the superblock's slot-count field.
const META_TAG: u64 = 0x6D65_7461; // "meta"

#[derive(Debug)]
struct LogFile {
    file: std::fs::File,
    len: u64,
    unsynced: u32,
}

impl LogFile {
    fn append(&mut self, bytes: &[u8], policy: FsyncPolicy) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(self.len))
            .and_then(|_| self.file.write_all(bytes))
            .map_err(|e| Error::io("node log append", e))?;
        self.len += bytes.len() as u64;
        self.unsynced += 1;
        if policy.due(self.unsynced) {
            self.file
                .sync_data()
                .map_err(|e| Error::io("node log sync", e))?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

/// A [`MetaStore`] whose accepted nodes survive crashes: every put is
/// mirrored into a per-shard append-only log and replayed on reopen.
#[derive(Debug)]
pub struct DiskNodeStore {
    inner: MetaStore,
    fsync: FsyncPolicy,
    logs: Vec<Mutex<LogFile>>,
    /// Keys already in the log — idempotent re-puts of an immutable node
    /// must not append a second record.
    logged: Mutex<HashSet<NodeKey>>,
}

impl DiskNodeStore {
    /// Opens (creating or recovering) a durable store under `dir` with
    /// its own client-NIC registry.
    ///
    /// # Errors
    /// [`Error::Internal`] on I/O failure, a foreign or corrupt
    /// superblock, a format mismatch, or a `shards` count that differs
    /// from the one the directory was created with (hash routing must
    /// not change under existing logs).
    pub fn open(
        dir: impl Into<PathBuf>,
        shards: usize,
        cost: CostModel,
        fsync: FsyncPolicy,
    ) -> Result<Self> {
        Self::open_with_client_nics(dir, shards, cost, Arc::new(ClientNics::new()), fsync)
    }

    /// [`Self::open`] booking client traffic on an existing NIC registry
    /// (shared with the data path, as `MetaStore::with_client_nics`).
    pub fn open_with_client_nics(
        dir: impl Into<PathBuf>,
        shards: usize,
        cost: CostModel,
        nics: Arc<ClientNics>,
        fsync: FsyncPolicy,
    ) -> Result<Self> {
        assert!(shards > 0, "need at least one metadata shard");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("meta store dir {}", dir.display()), e))?;
        let disk_shards = load_or_init_superblock(
            &dir.join("superblock"),
            shards as u32,
            META_TAG,
            "meta store",
        )?;
        if disk_shards as usize != shards {
            return Err(Error::Internal(format!(
                "meta store: directory was created with {disk_shards} shards, asked for {shards}"
            )));
        }

        let store = DiskNodeStore {
            inner: MetaStore::with_client_nics(shards, cost, nics),
            fsync,
            logs: Vec::with_capacity(shards),
            logged: Mutex::new(HashSet::new()),
        };
        let mut logs = Vec::with_capacity(shards);
        let mut logged = HashSet::new();
        for s in 0..shards {
            let shard_dir = dir.join("shards").join(format!("{s:03}"));
            std::fs::create_dir_all(&shard_dir)
                .map_err(|e| Error::io("meta store create shard", e))?;
            let path = shard_dir.join("000.log");
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| Error::io("meta store open log", e))?;
            let mut contents = Vec::new();
            file.read_to_end(&mut contents)
                .map_err(|e| Error::io("meta store scan log", e))?;
            let scan = scan_records(&contents);
            if scan.truncated {
                file.set_len(scan.valid_len)
                    .and_then(|_| file.sync_data())
                    .map_err(|e| Error::io("meta store truncate torn tail", e))?;
            }
            for rec in &scan.records {
                match rec.kind {
                    REC_NODE => {
                        let node = decode_node(&rec.body).ok_or_else(|| {
                            Error::Internal("meta store: malformed node record".into())
                        })?;
                        let key = node.key;
                        store
                            .inner
                            .put_batch_local(vec![node])
                            .pop()
                            .expect("one outcome per node")?;
                        logged.insert(key);
                    }
                    REC_EVICT => {
                        let mut r = ByteReader::new(&rec.body);
                        let key = decode_key(&mut r).filter(|_| r.done()).ok_or_else(|| {
                            Error::Internal("meta store: malformed evict record".into())
                        })?;
                        store.inner.evict(key);
                        logged.remove(&key);
                    }
                    other => {
                        return Err(Error::Internal(format!(
                            "meta store: unknown record kind {other}"
                        )));
                    }
                }
            }
            logs.push(Mutex::new(LogFile {
                file,
                len: scan.valid_len,
                unsynced: 0,
            }));
        }
        Ok(DiskNodeStore {
            logs,
            logged: Mutex::new(logged),
            ..store
        })
    }

    /// The wrapped in-memory store (cost model, shard loads, NICs).
    pub fn inner(&self) -> &MetaStore {
        &self.inner
    }

    /// The per-client NIC registry this store books traffic on.
    pub fn client_nics(&self) -> &Arc<ClientNics> {
        self.inner.client_nics()
    }

    /// Appends log records for every node the in-memory store newly
    /// accepted (conflicts and already-logged keys are skipped).
    fn log_accepted(&self, encoded: &[(NodeKey, Vec<u8>)], outcomes: &[Result<()>]) -> Result<()> {
        let mut logged = self.logged.lock();
        for ((key, framed), outcome) in encoded.iter().zip(outcomes) {
            if outcome.is_ok() && logged.insert(*key) {
                let s = self.inner.shard_index(*key);
                if let Err(e) = self.logs[s].lock().append(framed, self.fsync) {
                    // The node is in RAM but not durable: forget it was
                    // logged so a retry re-appends, and surface the error.
                    logged.remove(key);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Runs a put through the in-memory store, then logs what it
    /// accepted. A log I/O failure downgrades accepted slots to errors:
    /// a node that is not durable was not stored.
    fn put_and_log(
        &self,
        nodes: Vec<Node>,
        put: impl FnOnce(&MetaStore, Vec<Node>) -> Vec<Result<()>>,
    ) -> Vec<Result<()>> {
        let encoded: Vec<(NodeKey, Vec<u8>)> = nodes
            .iter()
            .map(|n| {
                let mut framed = Vec::new();
                append_record(&mut framed, REC_NODE, &encode_node(n));
                (n.key, framed)
            })
            .collect();
        let outcomes = put(&self.inner, nodes);
        if let Err(e) = self.log_accepted(&encoded, &outcomes) {
            let msg = format!("node log write failed: {e}");
            return outcomes
                .into_iter()
                .map(|o| o.and_then(|()| Err(Error::Internal(msg.clone()))))
                .collect();
        }
        outcomes
    }

    /// Forces every shard log's outstanding appends to stable storage
    /// (graceful shutdown under `Group`/`Deferred` fsync policies).
    pub fn flush(&self) -> Result<()> {
        for log in &self.logs {
            let mut log = log.lock();
            if log.unsynced > 0 {
                log.file
                    .sync_data()
                    .map_err(|e| Error::io("node log flush", e))?;
                log.unsynced = 0;
            }
        }
        Ok(())
    }
}

impl NodeStore for DiskNodeStore {
    fn put_batch(&self, p: &Participant, nodes: Vec<Node>) -> Vec<Result<()>> {
        self.put_and_log(nodes, |inner, nodes| inner.put_batch(p, nodes))
    }

    fn get_batch(&self, p: &Participant, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        self.inner.get_batch(p, keys)
    }

    fn contains(&self, key: NodeKey) -> bool {
        self.inner.contains(key)
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn evict(&self, key: NodeKey) {
        if !self.inner.contains(key) {
            return;
        }
        let mut framed = Vec::new();
        append_record(&mut framed, REC_EVICT, &encode_key(key));
        let s = self.inner.shard_index(key);
        // An eviction that cannot reach disk must not drop the node from
        // RAM — it would resurrect on replay.
        if self.logs[s].lock().append(&framed, self.fsync).is_err() {
            return;
        }
        self.logged.lock().remove(&key);
        self.inner.evict(key);
    }

    fn list_keys(&self) -> Vec<NodeKey> {
        self.inner.list_keys()
    }
}

impl LocalNodeStore for DiskNodeStore {
    fn put_batch_local(&self, nodes: Vec<Node>) -> Vec<Result<()>> {
        self.put_and_log(nodes, |inner, nodes| inner.put_batch_local(nodes))
    }

    fn get_batch_local(&self, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        self.inner.get_batch_local(keys)
    }
}

// ---------------------------------------------------------------------
// Node codec. The rpc value codec lives above this crate, so the log
// frames its own fixed-layout bytes (all integers big-endian).
// ---------------------------------------------------------------------

fn encode_key(key: NodeKey) -> Vec<u8> {
    let mut buf = Vec::with_capacity(NodeKey::WIRE_SIZE as usize);
    push_key(&mut buf, key);
    buf
}

/// Appends a node key's fixed 32-byte layout (blob, version, offset,
/// length; big-endian). Shared with the version manager's publish log,
/// which embeds root keys in its records.
pub fn push_key(buf: &mut Vec<u8>, key: NodeKey) {
    buf.extend_from_slice(&key.blob.raw().to_be_bytes());
    buf.extend_from_slice(&key.version.raw().to_be_bytes());
    buf.extend_from_slice(&key.range.offset.to_be_bytes());
    buf.extend_from_slice(&key.range.len.to_be_bytes());
}

/// Appends an optional key: a presence byte, then [`push_key`] if set.
pub fn push_opt_key(buf: &mut Vec<u8>, key: Option<NodeKey>) {
    match key {
        None => buf.push(0),
        Some(k) => {
            buf.push(1);
            push_key(buf, k);
        }
    }
}

fn encode_node(node: &Node) -> Vec<u8> {
    let mut buf = Vec::with_capacity(node.wire_size() as usize + 16);
    push_key(&mut buf, node.key);
    match &node.body {
        NodeBody::Inner { left, right } => {
            buf.push(0);
            push_opt_key(&mut buf, *left);
            push_opt_key(&mut buf, *right);
        }
        NodeBody::Leaf { entries, backlink } => {
            buf.push(1);
            push_opt_key(&mut buf, *backlink);
            buf.extend_from_slice(&(entries.len() as u32).to_be_bytes());
            for e in entries {
                buf.extend_from_slice(&e.file_range.offset.to_be_bytes());
                buf.extend_from_slice(&e.file_range.len.to_be_bytes());
                buf.extend_from_slice(&e.chunk.raw().to_be_bytes());
                buf.extend_from_slice(&e.chunk_offset.to_be_bytes());
                buf.extend_from_slice(&(e.homes.len() as u32).to_be_bytes());
                for h in &e.homes {
                    buf.extend_from_slice(&h.raw().to_be_bytes());
                }
            }
        }
    }
    buf
}

/// Reads the 32-byte key layout written by [`push_key`].
pub fn decode_key(r: &mut ByteReader<'_>) -> Option<NodeKey> {
    Some(NodeKey::new(
        BlobId::new(r.u64()?),
        VersionId::new(r.u64()?),
        ByteRange::new(r.u64()?, r.u64()?),
    ))
}

/// Reads an optional key written by [`push_opt_key`].
pub fn decode_opt_key(r: &mut ByteReader<'_>) -> Option<Option<NodeKey>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(decode_key(r)?)),
        _ => None,
    }
}

fn decode_node(body: &[u8]) -> Option<Node> {
    let mut r = ByteReader::new(body);
    let key = decode_key(&mut r)?;
    let node_body = match r.u8()? {
        0 => NodeBody::Inner {
            left: decode_opt_key(&mut r)?,
            right: decode_opt_key(&mut r)?,
        },
        1 => {
            let backlink = decode_opt_key(&mut r)?;
            let count = r.u32()?;
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let file_range = ByteRange::new(r.u64()?, r.u64()?);
                let chunk = ChunkId::new(r.u64()?);
                let chunk_offset = r.u64()?;
                let home_count = r.u32()?;
                let mut homes = Vec::with_capacity(home_count as usize);
                for _ in 0..home_count {
                    homes.push(ProviderId::new(r.u64()?));
                }
                entries.push(LeafEntry {
                    file_range,
                    chunk,
                    chunk_offset,
                    homes,
                });
            }
            NodeBody::Leaf { entries, backlink }
        }
        _ => return None,
    };
    if !r.done() {
        return None;
    }
    Some(Node {
        key,
        body: node_body,
    })
}

/// Builds one node store for `backend`: the in-memory [`MetaStore`] for
/// `Memory`, a recovered [`DiskNodeStore`] under `<dir>/meta` for
/// `Disk`. Both come back behind the participant-free
/// [`LocalNodeStore`] surface network services dispatch into.
pub fn node_store_for(
    backend: &atomio_types::BackendConfig,
    shards: usize,
    cost: CostModel,
    nics: Arc<ClientNics>,
) -> Result<Arc<dyn LocalNodeStore>> {
    Ok(match backend {
        atomio_types::BackendConfig::Memory => {
            Arc::new(MetaStore::with_client_nics(shards, cost, nics))
        }
        atomio_types::BackendConfig::Disk { dir, fsync } => Arc::new(
            DiskNodeStore::open_with_client_nics(dir.join("meta"), shards, cost, nics, *fsync)?,
        ),
    })
}

/// Access to the superblock path of a store rooted at `dir` (tests poke
/// torn tails and foreign tags through this).
pub fn meta_log_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join("shards")
        .join(format!("{shard:03}"))
        .join("000.log")
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::tempdir::TempDir;

    fn leaf(v: u64, off: u64) -> Node {
        Node {
            key: NodeKey::new(BlobId::new(0), VersionId::new(v), ByteRange::new(off, 64)),
            body: NodeBody::Leaf {
                entries: vec![LeafEntry {
                    file_range: ByteRange::new(off, 64),
                    chunk: ChunkId::new(v * 100 + off),
                    chunk_offset: 3,
                    homes: vec![ProviderId::new(0), ProviderId::new(2)],
                }],
                backlink: (v > 1).then(|| {
                    NodeKey::new(
                        BlobId::new(0),
                        VersionId::new(v - 1),
                        ByteRange::new(off, 64),
                    )
                }),
            },
        }
    }

    fn inner_node(v: u64) -> Node {
        Node {
            key: NodeKey::new(BlobId::new(0), VersionId::new(v), ByteRange::new(0, 128)),
            body: NodeBody::Inner {
                left: Some(NodeKey::new(
                    BlobId::new(0),
                    VersionId::new(v),
                    ByteRange::new(0, 64),
                )),
                right: None,
            },
        }
    }

    #[test]
    fn node_codec_roundtrips() {
        for node in [leaf(1, 0), leaf(2, 64), inner_node(3)] {
            assert_eq!(decode_node(&encode_node(&node)), Some(node));
        }
        let empty_leaf = Node {
            key: NodeKey::new(BlobId::new(1), VersionId::new(1), ByteRange::new(0, 64)),
            body: NodeBody::Leaf {
                entries: vec![],
                backlink: None,
            },
        };
        assert_eq!(decode_node(&encode_node(&empty_leaf)), Some(empty_leaf));
        // Trailing garbage is rejected, not ignored.
        let mut buf = encode_node(&leaf(1, 0));
        buf.push(0);
        assert_eq!(decode_node(&buf), None);
    }

    #[test]
    fn reopen_recovers_nodes_and_evictions() {
        let tmp = TempDir::new("atomio-diskmeta");
        {
            let store =
                DiskNodeStore::open(tmp.path(), 4, CostModel::zero(), FsyncPolicy::PerPublish)
                    .unwrap();
            run_actors(1, |_, p| {
                for v in 1..=5u64 {
                    store.put(p, leaf(v, 0)).unwrap();
                    store.put(p, leaf(v, 64)).unwrap();
                    store.put(p, leaf(v, 0)).unwrap(); // idempotent re-put
                }
            });
            store.evict(leaf(2, 0).key);
            // Hard drop, no flush.
        }
        let store =
            DiskNodeStore::open(tmp.path(), 4, CostModel::zero(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(store.node_count(), 9);
        assert!(!store.contains(leaf(2, 0).key));
        let (res, _) = run_actors(1, |_, p| store.get(p, leaf(3, 64).key));
        assert_eq!(*res[0].as_ref().unwrap().as_ref(), leaf(3, 64));
        // The recovered store keeps accepting and stays idempotent.
        run_actors(1, |_, p| {
            store.put(p, leaf(3, 64)).unwrap();
            store.put(p, leaf(9, 0)).unwrap();
        });
        assert_eq!(store.node_count(), 10);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let tmp = TempDir::new("atomio-diskmeta");
        {
            let store =
                DiskNodeStore::open(tmp.path(), 1, CostModel::zero(), FsyncPolicy::PerPublish)
                    .unwrap();
            run_actors(1, |_, p| {
                store.put(p, leaf(1, 0)).unwrap();
            });
        }
        let log = meta_log_path(tmp.path(), 0);
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&atomio_types::record::RECORD_MAGIC.to_be_bytes())
            .unwrap();
        f.write_all(&[REC_NODE, 0, 0]).unwrap();
        drop(f);
        let store =
            DiskNodeStore::open(tmp.path(), 1, CostModel::zero(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(store.node_count(), 1);
        run_actors(1, |_, p| {
            store.put(p, leaf(2, 0)).unwrap();
        });
        drop(store);
        let store =
            DiskNodeStore::open(tmp.path(), 1, CostModel::zero(), FsyncPolicy::PerPublish).unwrap();
        assert_eq!(store.node_count(), 2);
    }

    #[test]
    fn shard_count_is_pinned_by_the_superblock() {
        let tmp = TempDir::new("atomio-diskmeta");
        drop(DiskNodeStore::open(
            tmp.path(),
            4,
            CostModel::zero(),
            FsyncPolicy::PerPublish,
        ));
        let err = DiskNodeStore::open(tmp.path(), 8, CostModel::zero(), FsyncPolicy::PerPublish);
        assert!(matches!(err, Err(Error::Internal(_))));
    }

    #[test]
    fn timing_matches_memory_store() {
        let cost = CostModel::grid5000();
        let tmp = TempDir::new("atomio-diskmeta");
        let disk = DiskNodeStore::open(tmp.path(), 4, cost, FsyncPolicy::PerPublish).unwrap();
        let mem = MetaStore::new(4, cost);
        let drive = |store: &dyn NodeStore| {
            let (_, total) = run_actors(2, |i, p| {
                let base = i as u64 * 10 + 1;
                store
                    .put_batch(p, vec![leaf(base, 0), leaf(base, 64), inner_node(base)])
                    .into_iter()
                    .for_each(|r| r.unwrap());
                store.get(p, leaf(base, 0).key).unwrap();
            });
            total
        };
        assert_eq!(drive(&disk), drive(&mem));
    }

    #[test]
    fn node_store_factory_selects_backend() {
        let nics = Arc::new(ClientNics::new());
        let mem = node_store_for(
            &atomio_types::BackendConfig::Memory,
            2,
            CostModel::zero(),
            Arc::clone(&nics),
        )
        .unwrap();
        assert_eq!(mem.node_count(), 0);
        let tmp = TempDir::new("atomio-diskmeta");
        let disk = node_store_for(
            &atomio_types::BackendConfig::disk(tmp.path()),
            2,
            CostModel::zero(),
            nics,
        )
        .unwrap();
        disk.put_batch_local(vec![leaf(1, 0)])
            .into_iter()
            .for_each(|r| r.unwrap());
        assert!(tmp.path().join("meta").join("superblock").exists());
        assert_eq!(disk.node_count(), 1);
    }
}
