//! Building and querying copy-on-write segment trees.
//!
//! [`TreeBuilder::build_update`] turns one atomic (possibly
//! non-contiguous) write into a complete new tree for its version — with
//! **no reads of other versions' nodes and no waiting**: every link to
//! older content is computed from the shared [`VersionHistory`] thanks to
//! deterministic [`NodeKey`]s. [`TreeReader::resolve`] maps a snapshot +
//! extent list onto the stored chunks (or zero-fill holes).
//!
//! Construction is pure (zero virtual time): the builder stages the new
//! version's nodes children-before-parents, then **commits them in one
//! flush** — shard-parallel through [`MetaStore::put_batch`] under the
//! default [`MetaCommitMode::Batched`], or as a per-node put loop under
//! [`MetaCommitMode::Serial`] (the pre-batching baseline kept for
//! ablation).

use crate::history::VersionHistory;
use crate::node::{LeafEntry, Node, NodeBody, NodeKey};
use crate::store::NodeStore;
use atomio_simgrid::{Metrics, Participant};
use atomio_types::{BlobId, ByteRange, ChunkId, Error, ExtentList, ProviderId, Result, VersionId};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// How a built tree's nodes are committed to the [`MetaStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaCommitMode {
    /// One RPC + one shard booking per node, in build order. The
    /// pre-batching baseline, kept for the E7e ablation.
    Serial,
    /// All staged nodes go through [`MetaStore::put_batch`]: one
    /// overlapped RPC, one list-request booking per shard, one wait.
    #[default]
    Batched,
}

/// Static geometry of a blob's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Bytes covered by one leaf (equals the striping chunk size).
    pub leaf_size: u64,
}

impl TreeConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics unless `leaf_size` is a positive power of two (dyadic
    /// ranges require it).
    pub fn new(leaf_size: u64) -> Self {
        assert!(
            leaf_size.is_power_of_two(),
            "leaf size must be a power of two, got {leaf_size}"
        );
        TreeConfig { leaf_size }
    }

    /// Smallest valid tree capacity covering byte `end`: a power-of-two
    /// multiple of the leaf size, at least one leaf.
    pub fn capacity_for(&self, end: u64) -> u64 {
        let leaves = end.div_ceil(self.leaf_size).max(1);
        leaves.next_power_of_two() * self.leaf_size
    }
}

/// How a tree read traverses node levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaReadMode {
    /// One [`NodeStore::get`] per visited node, in depth-first order.
    /// The pre-batching baseline, kept for the E7f ablation.
    PerNode,
    /// One [`NodeStore::get_batch`] per traversal level: all pending
    /// node fetches of a level ship as a single list-request.
    #[default]
    Batched,
}

/// Writer-side tree construction.
#[derive(Debug)]
pub struct TreeBuilder<'a> {
    blob: BlobId,
    store: &'a dyn NodeStore,
    history: &'a VersionHistory,
    config: TreeConfig,
    mode: MetaCommitMode,
    metrics: Option<Metrics>,
}

impl<'a> TreeBuilder<'a> {
    /// Creates a builder for one blob over a store and that blob's
    /// write history, committing in the default [`MetaCommitMode`].
    pub fn new(
        blob: BlobId,
        store: &'a dyn NodeStore,
        history: &'a VersionHistory,
        config: TreeConfig,
    ) -> Self {
        TreeBuilder {
            blob,
            store,
            history,
            config,
            mode: MetaCommitMode::default(),
            metrics: None,
        }
    }

    /// Sets how staged nodes are flushed to the store.
    pub fn with_mode(mut self, mode: MetaCommitMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a metrics registry; each flush then records
    /// `core.meta_commit_time` (virtual time spent committing) and
    /// `core.meta_commit_depth` (nodes per commit).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Commits the staged node set: the only place tree construction
    /// spends virtual time.
    fn flush(&self, p: &Participant, staged: Vec<Node>) -> Result<()> {
        let depth = staged.len() as u64;
        let start = p.now_ns();
        let outcomes = match self.mode {
            MetaCommitMode::Batched => self.store.put_batch(p, staged),
            MetaCommitMode::Serial => staged
                .into_iter()
                .map(|node| self.store.put(p, node))
                .collect(),
        };
        if let Some(m) = &self.metrics {
            m.value_stat("core.meta_commit_depth").record(depth);
            m.time_stat("core.meta_commit_time")
                .record(Duration::from_nanos(p.now_ns() - start));
        }
        for outcome in outcomes {
            outcome?;
        }
        Ok(())
    }

    /// Builds and stores the complete tree of version `v`.
    ///
    /// * `capacity` — the tree capacity recorded for `v` in the history
    ///   (monotonic across versions, covers all of `v`'s extents).
    /// * `entries` — the write's leaf descriptors: sorted, disjoint, and
    ///   each contained in a single leaf range.
    ///
    /// Returns the new root key `(v, [0, capacity))`.
    pub fn build_update(
        &self,
        p: &Participant,
        v: VersionId,
        capacity: u64,
        entries: &[LeafEntry],
    ) -> Result<NodeKey> {
        if entries.is_empty() {
            return Err(Error::EmptyAccess);
        }
        let root_range = ByteRange::new(0, capacity);
        for (i, e) in entries.iter().enumerate() {
            let leaf = self.leaf_range_of(e.file_range.offset);
            if !leaf.contains_range(e.file_range) {
                return Err(Error::Internal(format!(
                    "entry {} {} crosses leaf boundary {leaf}",
                    i, e.file_range
                )));
            }
            if i > 0 && entries[i - 1].file_range.end() > e.file_range.offset {
                return Err(Error::Internal(
                    "leaf entries must be sorted and disjoint".into(),
                ));
            }
            if !root_range.contains_range(e.file_range) {
                return Err(Error::OutOfBounds {
                    requested_end: e.file_range.end(),
                    snapshot_size: capacity,
                });
            }
        }
        let mut staged = Vec::new();
        let root = self.build_node(v, root_range, entries, &mut staged);
        self.flush(p, staged)?;
        Ok(root)
    }

    /// Builds a **tombstone** tree for a write that was ticketed but then
    /// failed (e.g. quorum loss during the data transfer).
    ///
    /// The write's summary is already visible in the history, so
    /// concurrent writers may have linked to `(v, range)` node keys for
    /// every range the summary advertises — those nodes must exist. A
    /// tombstone creates exactly that node set, but with **empty leaf
    /// entries backlinked to the previous toucher**, making the failed
    /// write a semantic no-op: readers resolve straight through it.
    pub fn build_tombstone(
        &self,
        p: &Participant,
        v: VersionId,
        capacity: u64,
        extents: &ExtentList,
    ) -> Result<NodeKey> {
        if extents.is_empty() {
            return Err(Error::EmptyAccess);
        }
        let root_range = ByteRange::new(0, capacity);
        let mut staged = Vec::new();
        let root = self.build_tombstone_node(v, root_range, extents, &mut staged);
        self.flush(p, staged)?;
        Ok(root)
    }

    fn build_tombstone_node(
        &self,
        v: VersionId,
        range: ByteRange,
        extents: &ExtentList,
        staged: &mut Vec<Node>,
    ) -> NodeKey {
        let key = NodeKey::new(self.blob, v, range);
        let body = if range.len == self.config.leaf_size {
            NodeBody::Leaf {
                entries: Vec::new(),
                backlink: self
                    .history
                    .latest_toucher(v, range)
                    .map(|(u, _)| NodeKey::new(self.blob, u, range)),
            }
        } else {
            let (lo, hi) = range.split_at(range.offset + range.len / 2);
            let link = |half: ByteRange, staged: &mut Vec<Node>| -> Option<NodeKey> {
                if extents.clip(half).is_empty() {
                    self.link_for(v, half, staged)
                } else {
                    Some(self.build_tombstone_node(v, half, extents, staged))
                }
            };
            NodeBody::Inner {
                left: link(lo, staged),
                right: link(hi, staged),
            }
        };
        staged.push(Node { key, body });
        key
    }

    fn leaf_range_of(&self, pos: u64) -> ByteRange {
        let start = pos / self.config.leaf_size * self.config.leaf_size;
        ByteRange::new(start, self.config.leaf_size)
    }

    fn build_node(
        &self,
        v: VersionId,
        range: ByteRange,
        entries: &[LeafEntry],
        staged: &mut Vec<Node>,
    ) -> NodeKey {
        debug_assert!(!entries.is_empty());
        let key = NodeKey::new(self.blob, v, range);
        let body = if range.len == self.config.leaf_size {
            let covered = ExtentList::from_ranges(entries.iter().map(|e| e.file_range));
            // A fully-overwritten leaf cuts the backlink chain: readers
            // never need older content for this range.
            let backlink = if covered == ExtentList::single(range) {
                None
            } else {
                self.history
                    .latest_toucher(v, range)
                    .map(|(u, _)| NodeKey::new(self.blob, u, range))
            };
            NodeBody::Leaf {
                entries: entries.to_vec(),
                backlink,
            }
        } else {
            let (lo, hi) = range.split_at(range.offset + range.len / 2);
            NodeBody::Inner {
                left: self.child_link(v, lo, entries, staged),
                right: self.child_link(v, hi, entries, staged),
            }
        };
        staged.push(Node { key, body });
        key
    }

    fn child_link(
        &self,
        v: VersionId,
        range: ByteRange,
        entries: &[LeafEntry],
        staged: &mut Vec<Node>,
    ) -> Option<NodeKey> {
        let lo = entries.partition_point(|e| e.file_range.end() <= range.offset);
        let hi = entries.partition_point(|e| e.file_range.offset < range.end());
        if lo < hi {
            Some(self.build_node(v, range, &entries[lo..hi], staged))
        } else {
            self.link_for(v, range, staged)
        }
    }

    /// Computes the link target for a range this write does not touch:
    /// the latest earlier toucher's node — materializing *filler* inner
    /// nodes when the target version's tree was smaller than `range`
    /// (capacity expansion).
    fn link_for(&self, v: VersionId, range: ByteRange, staged: &mut Vec<Node>) -> Option<NodeKey> {
        match self.history.latest_toucher(v, range) {
            None => None,
            Some((u, cap_u)) if cap_u >= range.end() => Some(NodeKey::new(self.blob, u, range)),
            Some((_, _)) => {
                // The latest toucher's tree is smaller than this range.
                // Capacity monotonicity guarantees the range starts at 0
                // (see history tests) and that nothing was ever written in
                // the upper half.
                debug_assert_eq!(range.offset, 0, "undersized link off origin");
                let (lo, hi) = range.split_at(range.offset + range.len / 2);
                let left = self.link_for(v, lo, staged);
                let right = self.link_for(v, hi, staged);
                debug_assert!(right.is_none(), "toucher beyond its capacity");
                let key = NodeKey::new(self.blob, v, range);
                staged.push(Node {
                    key,
                    body: NodeBody::Inner { left, right },
                });
                Some(key)
            }
        }
    }
}

/// Where one resolved byte range's data lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceSource {
    /// Chunk holding the bytes.
    pub chunk: ChunkId,
    /// Offset of the piece's first byte within the chunk.
    pub chunk_offset: u64,
    /// Replica homes, primary first.
    pub homes: Vec<ProviderId>,
}

/// One contiguous resolved piece of a read: either stored bytes or a hole
/// (never-written bytes that read as zeros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPiece {
    /// Absolute file range.
    pub file_range: ByteRange,
    /// Backing chunk, or `None` for a hole.
    pub source: Option<PieceSource>,
}

/// Reader-side tree traversal.
#[derive(Debug)]
pub struct TreeReader<'a> {
    store: &'a dyn NodeStore,
    cache: Option<&'a crate::cache::NodeCache>,
    read_mode: MetaReadMode,
}

impl<'a> TreeReader<'a> {
    /// Creates a reader over a store.
    pub fn new(store: &'a dyn NodeStore) -> Self {
        TreeReader {
            store,
            cache: None,
            read_mode: MetaReadMode::default(),
        }
    }

    /// Creates a reader that consults a client-side node cache first.
    /// Cache hits are free of simulated cost (they never leave the
    /// client); misses are fetched from the store and cached.
    pub fn with_cache(store: &'a dyn NodeStore, cache: &'a crate::cache::NodeCache) -> Self {
        TreeReader {
            store,
            cache: Some(cache),
            read_mode: MetaReadMode::default(),
        }
    }

    /// Sets how traversal levels are fetched.
    pub fn with_read_mode(mut self, mode: MetaReadMode) -> Self {
        self.read_mode = mode;
        self
    }

    fn fetch(&self, p: &Participant, key: NodeKey) -> Result<std::sync::Arc<Node>> {
        if let Some(cache) = self.cache {
            if let Some(node) = cache.get(key) {
                return Ok(node);
            }
            let node = self.store.get(p, key)?;
            cache.insert(std::sync::Arc::clone(&node));
            return Ok(node);
        }
        self.store.get(p, key)
    }

    /// Fetches one traversal level: cache hits are free, all misses ship
    /// as **one** [`NodeStore::get_batch`] list-request.
    fn fetch_level(&self, p: &Participant, keys: &[NodeKey]) -> Result<Vec<std::sync::Arc<Node>>> {
        let mut out: Vec<Option<std::sync::Arc<Node>>> = vec![None; keys.len()];
        let mut miss_idx = Vec::new();
        let mut miss_keys = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match self.cache.and_then(|c| c.get(key)) {
                Some(node) => out[i] = Some(node),
                None => {
                    miss_idx.push(i);
                    miss_keys.push(key);
                }
            }
        }
        if !miss_keys.is_empty() {
            for (i, fetched) in miss_idx
                .into_iter()
                .zip(self.store.get_batch(p, &miss_keys))
            {
                let node = fetched?;
                if let Some(cache) = self.cache {
                    cache.insert(std::sync::Arc::clone(&node));
                }
                out[i] = Some(node);
            }
        }
        Ok(out.into_iter().map(|n| n.expect("slot filled")).collect())
    }

    /// Maps `extents` of the snapshot rooted at `root` onto stored
    /// chunks. Bytes outside the tree's capacity and never-written gaps
    /// come back as holes. Pieces are returned sorted by file offset.
    pub fn resolve(
        &self,
        p: &Participant,
        root: Option<NodeKey>,
        extents: &ExtentList,
    ) -> Result<Vec<ResolvedPiece>> {
        let mut out = Vec::new();
        match root {
            None => push_holes(&mut out, extents),
            Some(root) => {
                let inside = extents.clip(root.range);
                let outside = extents.subtract(&inside);
                push_holes(&mut out, &outside);
                if !inside.is_empty() {
                    match self.read_mode {
                        MetaReadMode::PerNode => self.walk(p, root, &inside, &mut out)?,
                        MetaReadMode::Batched => self.walk_levels(p, root, inside, &mut out)?,
                    }
                }
            }
        }
        out.sort_by_key(|piece| piece.file_range.offset);
        Ok(out)
    }

    /// Level-order traversal: every pending node of a level — tree
    /// children *and* backlink hops alike — is fetched in a single
    /// batched list-request, applying the E7e batching win to reads.
    /// Output (after the final sort) is identical to [`Self::walk`].
    fn walk_levels(
        &self,
        p: &Participant,
        root: NodeKey,
        want: ExtentList,
        out: &mut Vec<ResolvedPiece>,
    ) -> Result<()> {
        let mut frontier: Vec<(NodeKey, ExtentList)> = vec![(root, want)];
        while !frontier.is_empty() {
            let keys: Vec<NodeKey> = frontier.iter().map(|(key, _)| *key).collect();
            let nodes = self.fetch_level(p, &keys)?;
            let mut next = Vec::new();
            for (node, (key, want)) in nodes.into_iter().zip(frontier) {
                self.visit(&node, key, &want, out, &mut next);
            }
            frontier = next;
        }
        Ok(())
    }

    /// Resolves one fetched node against its wanted extents, emitting
    /// pieces/holes and queueing children or backlinks for the next
    /// level.
    fn visit(
        &self,
        node: &Node,
        key: NodeKey,
        want: &ExtentList,
        out: &mut Vec<ResolvedPiece>,
        next: &mut Vec<(NodeKey, ExtentList)>,
    ) {
        debug_assert!(!want.is_empty());
        match &node.body {
            NodeBody::Inner { left, right } => {
                let mid = key.range.offset + key.range.len / 2;
                let (lo, hi) = key.range.split_at(mid);
                for (half, link) in [(lo, left), (hi, right)] {
                    let sub = want.clip(half);
                    if sub.is_empty() {
                        continue;
                    }
                    match link {
                        Some(child) => next.push((*child, sub)),
                        None => push_holes(out, &sub),
                    }
                }
            }
            NodeBody::Leaf { entries, backlink } => {
                let remaining = resolve_leaf(entries, want, out);
                if !remaining.is_empty() {
                    match backlink {
                        Some(older) => next.push((*older, remaining)),
                        None => push_holes(out, &remaining),
                    }
                }
            }
        }
    }

    fn walk(
        &self,
        p: &Participant,
        key: NodeKey,
        want: &ExtentList,
        out: &mut Vec<ResolvedPiece>,
    ) -> Result<()> {
        debug_assert!(!want.is_empty());
        let node = self.fetch(p, key)?;
        match &node.body {
            NodeBody::Inner { left, right } => {
                let mid = key.range.offset + key.range.len / 2;
                let (lo, hi) = key.range.split_at(mid);
                for (half, link) in [(lo, left), (hi, right)] {
                    let sub = want.clip(half);
                    if sub.is_empty() {
                        continue;
                    }
                    match link {
                        Some(child) => self.walk(p, *child, &sub, out)?,
                        None => push_holes(out, &sub),
                    }
                }
            }
            NodeBody::Leaf { entries, backlink } => {
                let remaining = resolve_leaf(entries, want, out);
                if !remaining.is_empty() {
                    match backlink {
                        Some(older) => self.walk(p, *older, &remaining, out)?,
                        None => push_holes(out, &remaining),
                    }
                }
            }
        }
        Ok(())
    }

    /// Every chunk reachable from `root` (through subtree sharing and
    /// backlink chains), with its replica homes. Used by version GC and
    /// by repair tooling.
    pub fn referenced_chunks(
        &self,
        p: &Participant,
        root: Option<NodeKey>,
    ) -> Result<HashMap<ChunkId, Vec<ProviderId>>> {
        let mut chunks = HashMap::new();
        let mut visited = HashSet::new();
        if let Some(root) = root {
            self.collect(p, root, &mut visited, &mut chunks)?;
        }
        Ok(chunks)
    }

    fn collect(
        &self,
        p: &Participant,
        key: NodeKey,
        visited: &mut HashSet<NodeKey>,
        chunks: &mut HashMap<ChunkId, Vec<ProviderId>>,
    ) -> Result<()> {
        if !visited.insert(key) {
            return Ok(());
        }
        let node = self.fetch(p, key)?;
        match &node.body {
            NodeBody::Inner { left, right } => {
                for link in [left, right].into_iter().flatten() {
                    self.collect(p, *link, visited, chunks)?;
                }
            }
            NodeBody::Leaf { entries, backlink } => {
                for e in entries {
                    chunks.entry(e.chunk).or_insert_with(|| e.homes.clone());
                }
                if let Some(older) = backlink {
                    self.collect(p, *older, visited, chunks)?;
                }
            }
        }
        Ok(())
    }

    /// Every node key reachable from `root` (for GC of whole versions).
    pub fn reachable_nodes(
        &self,
        p: &Participant,
        root: Option<NodeKey>,
    ) -> Result<HashSet<NodeKey>> {
        let mut visited = HashSet::new();
        let mut chunks = HashMap::new();
        if let Some(root) = root {
            self.collect(p, root, &mut visited, &mut chunks)?;
        }
        Ok(visited)
    }
}

/// Overlays one leaf's entries onto `want`, emitting resolved pieces;
/// returns the extents the leaf did not cover (to be satisfied by the
/// backlink chain or read as holes).
fn resolve_leaf(
    entries: &[LeafEntry],
    want: &ExtentList,
    out: &mut Vec<ResolvedPiece>,
) -> ExtentList {
    let mut remaining = want.clone();
    for e in entries {
        let hit = remaining.clip(e.file_range);
        for &r in &hit {
            let clipped = e.clip(r).expect("hit ranges intersect the entry");
            out.push(ResolvedPiece {
                file_range: clipped.file_range,
                source: Some(PieceSource {
                    chunk: clipped.chunk,
                    chunk_offset: clipped.chunk_offset,
                    homes: clipped.homes,
                }),
            });
        }
        remaining = remaining.subtract(&hit);
        if remaining.is_empty() {
            break;
        }
    }
    remaining
}

fn push_holes(out: &mut Vec<ResolvedPiece>, holes: &ExtentList) {
    for &r in holes {
        out.push(ResolvedPiece {
            file_range: r,
            source: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::WriteSummary;
    use crate::store::MetaStore;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::CostModel;
    use std::sync::Arc;

    const LEAF: u64 = 64;

    struct Fixture {
        store: MetaStore,
        history: VersionHistory,
        config: TreeConfig,
        next_chunk: std::sync::atomic::AtomicU64,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                store: MetaStore::new(4, CostModel::zero()),
                history: VersionHistory::new(),
                config: TreeConfig::new(LEAF),
                next_chunk: std::sync::atomic::AtomicU64::new(0),
            }
        }

        /// Registers a write at the next version and builds its tree;
        /// returns (version, root, entry chunk ids in order).
        fn write(&self, p: &Participant, pairs: &[(u64, u64)]) -> (VersionId, NodeKey) {
            let v = VersionId::new(self.history.len() as u64 + 1);
            let extents = ExtentList::from_pairs(pairs.iter().copied());
            let end = extents.covering_range().end();
            let capacity = self
                .config
                .capacity_for(end)
                .max(self.history.capacity_of(VersionId::new(v.raw() - 1)));
            self.history.append(WriteSummary {
                version: v,
                extents: Arc::new(extents.clone()),
                capacity,
            });
            let entries = self.entries_for(v, &extents);
            let builder = TreeBuilder::new(BlobId::new(0), &self.store, &self.history, self.config);
            let root = builder.build_update(p, v, capacity, &entries).unwrap();
            (v, root)
        }

        /// Splits extents into leaf-aligned entries with fresh chunk ids.
        fn entries_for(&self, _v: VersionId, extents: &ExtentList) -> Vec<LeafEntry> {
            let geo = atomio_types::ChunkGeometry::new(LEAF);
            geo.split_extents(extents)
                .into_iter()
                .map(|span| LeafEntry {
                    file_range: span.absolute,
                    chunk: ChunkId::new(
                        self.next_chunk
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                    ),
                    chunk_offset: 0,
                    homes: vec![ProviderId::new(0)],
                })
                .collect()
        }

        fn resolve(
            &self,
            p: &Participant,
            root: NodeKey,
            pairs: &[(u64, u64)],
        ) -> Vec<ResolvedPiece> {
            TreeReader::new(&self.store)
                .resolve(
                    p,
                    Some(root),
                    &ExtentList::from_pairs(pairs.iter().copied()),
                )
                .unwrap()
        }
    }

    #[test]
    fn commit_modes_store_same_nodes_batched_faster() {
        let build = |mode: MetaCommitMode| {
            let store = MetaStore::new(4, CostModel::grid5000());
            let history = VersionHistory::new();
            let config = TreeConfig::new(LEAF);
            let extents = ExtentList::from_pairs([(0u64, LEAF * 8)]);
            history.append(WriteSummary {
                version: VersionId::new(1),
                extents: Arc::new(extents.clone()),
                capacity: LEAF * 8,
            });
            let geo = atomio_types::ChunkGeometry::new(LEAF);
            let entries: Vec<LeafEntry> = geo
                .split_extents(&extents)
                .into_iter()
                .enumerate()
                .map(|(i, span)| LeafEntry {
                    file_range: span.absolute,
                    chunk: ChunkId::new(i as u64),
                    chunk_offset: 0,
                    homes: vec![ProviderId::new(0)],
                })
                .collect();
            let metrics = Metrics::new();
            let (_, total) = run_actors(1, |_, p| {
                TreeBuilder::new(BlobId::new(0), &store, &history, config)
                    .with_mode(mode)
                    .with_metrics(metrics.clone())
                    .build_update(p, VersionId::new(1), LEAF * 8, &entries)
                    .unwrap();
            });
            (store, metrics, total)
        };
        let (s_store, s_metrics, s_total) = build(MetaCommitMode::Serial);
        let (b_store, b_metrics, b_total) = build(MetaCommitMode::Batched);
        // 8 leaves + 7 inners, identical under both modes.
        assert_eq!(s_store.node_count(), 15);
        assert_eq!(b_store.node_count(), 15);
        assert_eq!(s_metrics.value_stat("core.meta_commit_depth").sum(), 15);
        assert_eq!(b_metrics.value_stat("core.meta_commit_depth").sum(), 15);
        assert!(
            b_total < s_total,
            "batched commit ({b_total:?}) should beat serial ({s_total:?})"
        );
        assert!(
            b_metrics.time_stat("core.meta_commit_time").sum()
                < s_metrics.time_stat("core.meta_commit_time").sum()
        );
    }

    #[test]
    fn capacity_for_rounds_to_pow2_leaves() {
        let c = TreeConfig::new(64);
        assert_eq!(c.capacity_for(0), 64);
        assert_eq!(c.capacity_for(1), 64);
        assert_eq!(c.capacity_for(64), 64);
        assert_eq!(c.capacity_for(65), 128);
        assert_eq!(c.capacity_for(129), 256);
        assert_eq!(c.capacity_for(64 * 5), 64 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_leaf_rejected() {
        let _ = TreeConfig::new(48);
    }

    #[test]
    fn single_write_resolves_back() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, root) = fx.write(p, &[(0, 64), (128, 64)]);
            let pieces = fx.resolve(p, root, &[(0, 256)]);
            // [0,64) chunk0, [64,128) hole, [128,192) chunk1, [192,256) hole.
            assert_eq!(pieces.len(), 4);
            assert_eq!(pieces[0].file_range, ByteRange::new(0, 64));
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[1].file_range, ByteRange::new(64, 64));
            assert!(pieces[1].source.is_none());
            assert_eq!(pieces[2].source.as_ref().unwrap().chunk, ChunkId::new(1));
            assert!(pieces[3].source.is_none());
        });
    }

    #[test]
    fn unaligned_write_keeps_offsets() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            // Write [10, 20): one partial-leaf entry.
            let (_, root) = fx.write(p, &[(10, 10)]);
            let pieces = fx.resolve(p, root, &[(12, 5)]);
            assert_eq!(pieces.len(), 1);
            let src = pieces[0].source.as_ref().unwrap();
            assert_eq!(pieces[0].file_range, ByteRange::new(12, 5));
            // Chunk holds bytes for [10,20); piece starts 2 bytes in.
            assert_eq!(src.chunk_offset, 2);
        });
    }

    #[test]
    fn overwrite_shadows_older_version() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, root1) = fx.write(p, &[(0, 64)]); // chunk 0
            let (_, root2) = fx.write(p, &[(0, 64)]); // chunk 1
            let p1 = fx.resolve(p, root1, &[(0, 64)]);
            let p2 = fx.resolve(p, root2, &[(0, 64)]);
            assert_eq!(p1[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(p2[0].source.as_ref().unwrap().chunk, ChunkId::new(1));
        });
    }

    #[test]
    fn partial_overwrite_follows_backlink() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _r1) = fx.write(p, &[(0, 64)]); // v1: whole leaf, chunk 0
            let (_, root2) = fx.write(p, &[(16, 16)]); // v2: middle, chunk 1
            let pieces = fx.resolve(p, root2, &[(0, 64)]);
            assert_eq!(pieces.len(), 3);
            assert_eq!(pieces[0].file_range, ByteRange::new(0, 16));
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk_offset, 0);
            assert_eq!(pieces[1].file_range, ByteRange::new(16, 16));
            assert_eq!(pieces[1].source.as_ref().unwrap().chunk, ChunkId::new(1));
            assert_eq!(pieces[2].file_range, ByteRange::new(32, 32));
            assert_eq!(pieces[2].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[2].source.as_ref().unwrap().chunk_offset, 32);
        });
    }

    #[test]
    fn untouched_subtrees_are_shared() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _) = fx.write(p, &[(0, 256)]); // v1: 4 leaves
            let before = fx.store.node_count();
            let (_, _) = fx.write(p, &[(0, 64)]); // v2: 1 leaf
            let added = fx.store.node_count() - before;
            // v2 adds: 1 leaf + path to root (depth 2 inners) = 3 nodes.
            assert_eq!(added, 3, "sharing broken: {added} nodes added");
        });
    }

    #[test]
    fn capacity_expansion_wraps_old_root() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, root1) = fx.write(p, &[(0, 64)]); // cap 64
            assert_eq!(root1.range, ByteRange::new(0, 64));
            let (_, root2) = fx.write(p, &[(64 * 7, 64)]); // cap 512
            assert_eq!(root2.range, ByteRange::new(0, 512));
            // Old data still visible through the expanded tree.
            let pieces = fx.resolve(p, root2, &[(0, 64), (64 * 7, 64)]);
            assert_eq!(pieces.len(), 2);
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[1].source.as_ref().unwrap().chunk, ChunkId::new(1));
        });
    }

    #[test]
    fn expansion_filler_spans_multiple_levels() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _) = fx.write(p, &[(0, 32)]); // cap 64
                                                  // Jump far: cap 64 -> 1024 (4 doublings).
            let (_, root2) = fx.write(p, &[(64 * 15, 32)]);
            assert_eq!(root2.range.len, 1024);
            let pieces = fx.resolve(p, root2, &[(0, 32), (64 * 15, 32)]);
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[1].source.as_ref().unwrap().chunk, ChunkId::new(1));
            // Gap in between is holes.
            let holes = fx.resolve(p, root2, &[(100, 800)]);
            assert!(holes.iter().all(|piece| piece.source.is_none()));
        });
    }

    #[test]
    fn read_beyond_capacity_is_holes() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, root) = fx.write(p, &[(0, 64)]);
            let pieces = fx.resolve(p, root, &[(0, 64), (1000, 24)]);
            assert_eq!(pieces.len(), 2);
            assert!(pieces[0].source.is_some());
            assert_eq!(pieces[1].file_range, ByteRange::new(1000, 24));
            assert!(pieces[1].source.is_none());
        });
    }

    #[test]
    fn resolve_with_no_root_is_all_holes() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let pieces = TreeReader::new(&fx.store)
                .resolve(p, None, &ExtentList::from_pairs([(0u64, 128u64)]))
                .unwrap();
            assert_eq!(pieces.len(), 1);
            assert!(pieces[0].source.is_none());
        });
    }

    #[test]
    fn empty_update_rejected() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
            let err = builder
                .build_update(p, VersionId::new(1), 64, &[])
                .unwrap_err();
            assert_eq!(err, Error::EmptyAccess);
        });
    }

    #[test]
    fn entry_crossing_leaf_rejected() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            fx.history.append(WriteSummary {
                version: VersionId::new(1),
                extents: Arc::new(ExtentList::from_pairs([(32u64, 64u64)])),
                capacity: 128,
            });
            let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
            let bad = LeafEntry {
                file_range: ByteRange::new(32, 64), // crosses 64-boundary
                chunk: ChunkId::new(0),
                chunk_offset: 0,
                homes: vec![],
            };
            let err = builder
                .build_update(p, VersionId::new(1), 128, &[bad])
                .unwrap_err();
            assert!(matches!(err, Error::Internal(_)));
        });
    }

    #[test]
    fn out_of_order_build_still_resolves() {
        // The forward-reference property: v2's tree can be built BEFORE
        // v1's tree exists, as long as both summaries are in the history.
        // Reads of v2 performed after both builds complete see v1's data
        // where v2 did not write.
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            // Register both writes in ticket order.
            let v1 = VersionId::new(1);
            let v2 = VersionId::new(2);
            let e1 = ExtentList::from_pairs([(0u64, 64u64), (64, 64)]);
            let e2 = ExtentList::from_pairs([(64u64, 64u64)]);
            fx.history.append(WriteSummary {
                version: v1,
                extents: Arc::new(e1.clone()),
                capacity: 128,
            });
            fx.history.append(WriteSummary {
                version: v2,
                extents: Arc::new(e2.clone()),
                capacity: 128,
            });
            let entries1 = fx.entries_for(v1, &e1); // chunks 0,1
            let entries2 = fx.entries_for(v2, &e2); // chunk 2
            let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
            // Build v2 FIRST.
            let root2 = builder.build_update(p, v2, 128, &entries2).unwrap();
            let root1 = builder.build_update(p, v1, 128, &entries1).unwrap();
            // v2 sees chunk0 at [0,64) (v1's) and chunk2 at [64,128).
            let pieces = fx.resolve(p, root2, &[(0, 128)]);
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces[1].source.as_ref().unwrap().chunk, ChunkId::new(2));
            // v1 sees its own chunks only.
            let pieces1 = fx.resolve(p, root1, &[(0, 128)]);
            assert_eq!(pieces1[0].source.as_ref().unwrap().chunk, ChunkId::new(0));
            assert_eq!(pieces1[1].source.as_ref().unwrap().chunk, ChunkId::new(1));
        });
    }

    #[test]
    fn full_leaf_overwrite_cuts_backlink() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _) = fx.write(p, &[(0, 64)]);
            let (v2, root2) = fx.write(p, &[(0, 64)]);
            // Fetch v2's leaf node directly and check there is no
            // backlink (readers never walk to v1).
            let leaf = fx
                .store
                .get(p, NodeKey::new(BlobId::new(0), v2, ByteRange::new(0, 64)))
                .unwrap();
            match &leaf.body {
                NodeBody::Leaf { backlink, .. } => assert!(backlink.is_none()),
                _ => panic!("expected leaf"),
            }
            let pieces = fx.resolve(p, root2, &[(0, 64)]);
            assert_eq!(pieces.len(), 1);
        });
    }

    #[test]
    fn tombstone_resolves_through_to_older_data() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _) = fx.write(p, &[(0, 64), (64, 64)]); // v1: chunks 0,1
                                                            // v2 is ticketed over [32, 96) but fails: tombstone.
            let v2 = VersionId::new(2);
            let ext = ExtentList::from_pairs([(32u64, 64u64)]);
            fx.history.append(WriteSummary {
                version: v2,
                extents: Arc::new(ext.clone()),
                capacity: 128,
            });
            let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
            let root2 = builder.build_tombstone(p, v2, 128, &ext).unwrap();
            // Reading v2 shows v1's data everywhere, including inside the
            // failed write's extents.
            let pieces = fx.resolve(p, root2, &[(0, 128)]);
            let chunks: Vec<u64> = pieces
                .iter()
                .map(|pc| pc.source.as_ref().unwrap().chunk.raw())
                .collect();
            assert_eq!(chunks, vec![0, 1], "one piece per backlinked leaf");
            let covered: u64 = pieces.iter().map(|pc| pc.file_range.len).sum();
            assert_eq!(covered, 128);
            // A later writer linking to (v2, ...) keys finds real nodes.
            let (_, root3) = fx.write(p, &[(0, 16)]); // chunk 2
            let pieces = fx.resolve(p, root3, &[(0, 128)]);
            assert_eq!(pieces[0].source.as_ref().unwrap().chunk, ChunkId::new(2));
        });
    }

    #[test]
    fn tombstone_of_never_written_region_is_holes() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let v1 = VersionId::new(1);
            let ext = ExtentList::from_pairs([(0u64, 64u64)]);
            fx.history.append(WriteSummary {
                version: v1,
                extents: Arc::new(ext.clone()),
                capacity: 64,
            });
            let builder = TreeBuilder::new(BlobId::new(0), &fx.store, &fx.history, fx.config);
            let root = builder.build_tombstone(p, v1, 64, &ext).unwrap();
            let pieces = fx.resolve(p, root, &[(0, 64)]);
            assert!(pieces.iter().all(|pc| pc.source.is_none()));
        });
    }

    #[test]
    fn read_modes_resolve_identically() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            fx.write(p, &[(0, 256)]); // v1: full 4 leaves
            fx.write(p, &[(16, 16)]); // v2: partial leaf with backlink
            let (_, root3) = fx.write(p, &[(128, 32), (300, 20)]); // v3: expansion
            for pairs in [
                vec![(0u64, 512u64)],
                vec![(0, 16), (40, 100), (290, 40)],
                vec![(8, 4)],
            ] {
                let ext = ExtentList::from_pairs(pairs.iter().copied());
                let batched = TreeReader::new(&fx.store)
                    .resolve(p, Some(root3), &ext)
                    .unwrap();
                let per_node = TreeReader::new(&fx.store)
                    .with_read_mode(MetaReadMode::PerNode)
                    .resolve(p, Some(root3), &ext)
                    .unwrap();
                assert_eq!(batched, per_node, "extents {pairs:?}");
            }
        });
    }

    #[test]
    fn batched_reads_beat_per_node_reads() {
        let build = || {
            let fx = Fixture {
                store: MetaStore::new(4, CostModel::grid5000()),
                history: VersionHistory::new(),
                config: TreeConfig::new(LEAF),
                next_chunk: std::sync::atomic::AtomicU64::new(0),
            };
            let (roots, _) = run_actors(1, |_, p| fx.write(p, &[(0, LEAF * 16)]));
            (fx, roots[0].1)
        };
        let time_mode = |mode: MetaReadMode| {
            let (fx, root) = build();
            let (_, total) = run_actors(1, move |_, p| {
                TreeReader::new(&fx.store)
                    .with_read_mode(mode)
                    .resolve(p, Some(root), &ExtentList::from_pairs([(0u64, LEAF * 16)]))
                    .unwrap();
            });
            total
        };
        let per_node = time_mode(MetaReadMode::PerNode);
        let batched = time_mode(MetaReadMode::Batched);
        assert!(
            batched < per_node,
            "batched resolve ({batched:?}) should beat per-node ({per_node:?})"
        );
    }

    #[test]
    fn referenced_chunks_walks_shared_and_backlinks() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, _) = fx.write(p, &[(0, 64), (128, 64)]); // chunks 0,1
            let (_, root2) = fx.write(p, &[(16, 16)]); // chunk 2, partial leaf 0
            let reader = TreeReader::new(&fx.store);
            let chunks = reader.referenced_chunks(p, Some(root2)).unwrap();
            // v2 references its own chunk 2, backlinked chunk 0, and the
            // shared-subtree chunk 1.
            let mut ids: Vec<u64> = chunks.keys().map(|c| c.raw()).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2]);
        });
    }

    #[test]
    fn reachable_nodes_includes_all_levels() {
        let fx = Fixture::new();
        run_actors(1, |_, p| {
            let (_, root) = fx.write(p, &[(0, 256)]); // cap 256: 4 leaves + 3 inners
            let reader = TreeReader::new(&fx.store);
            let nodes = reader.reachable_nodes(p, Some(root)).unwrap();
            assert_eq!(nodes.len(), 7);
            assert!(nodes.contains(&root));
        });
    }
}
