//! Client-side metadata node cache.
//!
//! Tree nodes are **immutable** — a key, once published, forever names
//! the same node — so clients may cache them without any invalidation
//! protocol. This is one of the quiet payoffs of the versioning design:
//! a lock-based system must invalidate cached file state when locks move
//! around, while a shadowing system's metadata is cacheable forever.
//!
//! The cache is a bounded FIFO map: simple, O(1), and good enough for
//! the access patterns here (hot tree tops stay resident because readers
//! re-insert on miss; precise LRU buys little for dyadic tree walks).

use crate::node::{Node, NodeKey};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A bounded cache of immutable tree nodes.
#[derive(Debug)]
pub struct NodeCache {
    capacity: usize,
    inner: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<NodeKey, Arc<Node>>,
    fifo: VecDeque<NodeKey>,
}

impl NodeCache {
    /// Creates a cache holding at most `capacity` nodes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        NodeCache {
            capacity,
            inner: Mutex::new(CacheState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a node.
    pub fn get(&self, key: NodeKey) -> Option<Arc<Node>> {
        let hit = self.inner.lock().map.get(&key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts a node, evicting the oldest entry when full. Re-inserting
    /// an existing key is a no-op (nodes are immutable).
    pub fn insert(&self, node: Arc<Node>) {
        let mut st = self.inner.lock();
        if st.map.contains_key(&node.key) {
            return;
        }
        if st.map.len() >= self.capacity {
            if let Some(old) = st.fifo.pop_front() {
                st.map.remove(&old);
            }
        }
        st.fifo.push_back(node.key);
        st.map.insert(node.key, node);
    }

    /// Drops everything (used after GC retires versions, so evicted
    /// nodes cannot be resurrected from a stale cache).
    pub fn clear(&self) {
        let mut st = self.inner.lock();
        st.map.clear();
        st.fifo.clear();
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit rate in `[0, 1]` (zero when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeBody;
    use atomio_types::{BlobId, ByteRange, VersionId};

    fn node(v: u64, off: u64) -> Arc<Node> {
        Arc::new(Node {
            key: NodeKey::new(BlobId::new(0), VersionId::new(v), ByteRange::new(off, 64)),
            body: NodeBody::Inner {
                left: None,
                right: None,
            },
        })
    }

    #[test]
    fn insert_and_hit() {
        let cache = NodeCache::new(4);
        let n = node(1, 0);
        assert!(cache.get(n.key).is_none());
        cache.insert(Arc::clone(&n));
        assert_eq!(cache.get(n.key).unwrap().key, n.key);
        assert_eq!(cache.stats(), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = NodeCache::new(2);
        cache.insert(node(1, 0));
        cache.insert(node(1, 64));
        cache.insert(node(1, 128)); // evicts (1, 0)
        assert_eq!(cache.len(), 2);
        assert!(cache.get(node(1, 0).key).is_none());
        assert!(cache.get(node(1, 64).key).is_some());
        assert!(cache.get(node(1, 128).key).is_some());
    }

    #[test]
    fn reinsert_is_noop() {
        let cache = NodeCache::new(2);
        cache.insert(node(1, 0));
        cache.insert(node(1, 0));
        cache.insert(node(1, 0));
        assert_eq!(cache.len(), 1);
        // The FIFO must not have been polluted by duplicates.
        cache.insert(node(1, 64));
        cache.insert(node(1, 128));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let cache = NodeCache::new(4);
        cache.insert(node(1, 0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(node(1, 0).key).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = NodeCache::new(0);
    }
}
