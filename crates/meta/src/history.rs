//! The append-only history of write summaries.
//!
//! The version manager appends one [`WriteSummary`] per issued ticket —
//! *before* the writer starts building metadata. Writers consult the
//! history to compute deterministic links to the trees of earlier
//! versions, including versions that are still in flight. This shared
//! summary table is the simulation analogue of BlobSeer's version manager
//! handing each writer the descriptors of concurrent in-flight updates.

use atomio_types::{ByteRange, ExtentList, VersionId};
use parking_lot::RwLock;
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::Arc;

/// Summary of one write: which bytes it touched and the tree capacity its
/// version was published with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSummary {
    /// The write's assigned version.
    pub version: VersionId,
    /// The set of bytes the write covers.
    pub extents: Arc<ExtentList>,
    /// Tree capacity (root range length) of this version: a power-of-two
    /// multiple of the leaf size, monotonically non-decreasing across
    /// versions.
    pub capacity: u64,
}

// Hand-written: the derive cannot see through the `Arc` around the
// extent list (summaries ride ticket responses over the wire).
impl Serialize for WriteSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("extents".to_string(), self.extents.to_value()),
            ("capacity".to_string(), self.capacity.to_value()),
        ])
    }
}

impl Deserialize for WriteSummary {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(WriteSummary {
            version: VersionId::from_value(v.get_or_null("version"))?,
            extents: Arc::new(ExtentList::from_value(v.get_or_null("extents"))?),
            capacity: u64::from_value(v.get_or_null("capacity"))?,
        })
    }
}

/// Append-only, shared history of write summaries for one blob.
///
/// Version `k` (k ≥ 1) lives at index `k - 1`; version 0 is the implicit
/// empty snapshot.
#[derive(Debug, Default)]
pub struct VersionHistory {
    rows: RwLock<Vec<WriteSummary>>,
}

impl VersionHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the summary for the next version.
    ///
    /// # Panics
    /// Panics if `summary.version` is not exactly one past the last
    /// recorded version — tickets are issued densely and in order.
    pub fn append(&self, summary: WriteSummary) {
        let mut rows = self.rows.write();
        let expected = VersionId::new(rows.len() as u64 + 1);
        assert_eq!(
            summary.version, expected,
            "history rows must be appended densely"
        );
        if let Some(prev) = rows.last() {
            assert!(
                summary.capacity >= prev.capacity,
                "capacity must be monotonic"
            );
        }
        rows.push(summary);
    }

    /// All summaries of versions strictly greater than `known` (a row
    /// count from a previous call). Used by remote clients to mirror the
    /// server-side history incrementally: a ticket response carries the
    /// delta since the client's last known row.
    pub fn summaries_since(&self, known: usize) -> Vec<WriteSummary> {
        let rows = self.rows.read();
        rows.get(known.min(rows.len())..)
            .map_or_else(Vec::new, |tail| tail.to_vec())
    }

    /// Merges a delta obtained from [`Self::summaries_since`] into this
    /// history: already-known versions are skipped, new ones appended in
    /// order. Panics (via [`Self::append`]) on a gap, which would mean the
    /// server skipped rows.
    pub fn absorb(&self, delta: impl IntoIterator<Item = WriteSummary>) {
        for summary in delta {
            let known = self.rows.read().len() as u64;
            if summary.version.raw() <= known {
                continue;
            }
            self.append(summary);
        }
    }

    /// Number of versions recorded (excluding the implicit version 0).
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True when no write has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }

    /// The summary of `v`, if recorded.
    pub fn summary(&self, v: VersionId) -> Option<WriteSummary> {
        if v.is_initial() {
            return None;
        }
        self.rows.read().get(v.raw() as usize - 1).cloned()
    }

    /// Tree capacity of version `v` (0 for the initial empty version).
    pub fn capacity_of(&self, v: VersionId) -> u64 {
        self.summary(v).map_or(0, |s| s.capacity)
    }

    /// The latest version **strictly below** `below` whose write touched
    /// `range`, together with that version's capacity.
    ///
    /// This is the deterministic link-target computation: the returned
    /// version's tree contains (or will contain) a node for every dyadic
    /// range it touched.
    pub fn latest_toucher(&self, below: VersionId, range: ByteRange) -> Option<(VersionId, u64)> {
        if range.is_empty() {
            return None;
        }
        let rows = self.rows.read();
        let upper = (below.raw() as usize).saturating_sub(1).min(rows.len());
        rows[..upper]
            .iter()
            .rev()
            .find(|s| s.extents.overlaps(&ExtentList::single(range)))
            .map(|s| (s.version, s.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(v: u64, pairs: &[(u64, u64)], cap: u64) -> WriteSummary {
        WriteSummary {
            version: VersionId::new(v),
            extents: Arc::new(ExtentList::from_pairs(pairs.iter().copied())),
            capacity: cap,
        }
    }

    #[test]
    fn append_and_lookup() {
        let h = VersionHistory::new();
        assert!(h.is_empty());
        h.append(summary(1, &[(0, 10)], 64));
        h.append(summary(2, &[(100, 10)], 128));
        assert_eq!(h.len(), 2);
        assert_eq!(h.capacity_of(VersionId::new(1)), 64);
        assert_eq!(h.capacity_of(VersionId::new(2)), 128);
        assert_eq!(h.capacity_of(VersionId::INITIAL), 0);
        assert!(h.summary(VersionId::new(3)).is_none());
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn sparse_append_rejected() {
        let h = VersionHistory::new();
        h.append(summary(2, &[(0, 1)], 64));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn shrinking_capacity_rejected() {
        let h = VersionHistory::new();
        h.append(summary(1, &[(0, 1)], 128));
        h.append(summary(2, &[(0, 1)], 64));
    }

    #[test]
    fn latest_toucher_scans_down() {
        let h = VersionHistory::new();
        h.append(summary(1, &[(0, 100)], 128)); // v1 touches [0,100)
        h.append(summary(2, &[(50, 100)], 256)); // v2 touches [50,150)
        h.append(summary(3, &[(200, 10)], 256)); // v3 touches [200,210)

        // Below v4 (i.e. among v1..v3):
        let below = VersionId::new(4);
        assert_eq!(
            h.latest_toucher(below, ByteRange::new(0, 10)),
            Some((VersionId::new(1), 128))
        );
        assert_eq!(
            h.latest_toucher(below, ByteRange::new(60, 10)),
            Some((VersionId::new(2), 256))
        );
        assert_eq!(
            h.latest_toucher(below, ByteRange::new(205, 1)),
            Some((VersionId::new(3), 256))
        );
        assert_eq!(h.latest_toucher(below, ByteRange::new(300, 10)), None);

        // Below v2 only v1 is visible.
        assert_eq!(
            h.latest_toucher(VersionId::new(2), ByteRange::new(60, 10)),
            Some((VersionId::new(1), 128))
        );
        // Below v1 nothing is visible.
        assert_eq!(
            h.latest_toucher(VersionId::new(1), ByteRange::new(0, 10)),
            None
        );
    }

    #[test]
    fn summaries_roundtrip_and_mirror() {
        use serde::{Deserialize, Serialize};
        let h = VersionHistory::new();
        h.append(summary(1, &[(0, 10)], 64));
        h.append(summary(2, &[(100, 10), (200, 4)], 128));
        h.append(summary(3, &[(50, 10)], 128));

        // Wire roundtrip preserves every field.
        for s in h.summaries_since(0) {
            let back = WriteSummary::from_value(&s.to_value()).unwrap();
            assert_eq!(back.version, s.version);
            assert_eq!(*back.extents, *s.extents);
            assert_eq!(back.capacity, s.capacity);
        }

        // A mirror absorbing overlapping deltas converges without gaps.
        let mirror = VersionHistory::new();
        mirror.absorb(h.summaries_since(0));
        mirror.absorb(h.summaries_since(1)); // overlap: v2, v3 already known
        assert_eq!(mirror.len(), 3);
        assert_eq!(
            mirror.latest_toucher(VersionId::new(4), ByteRange::new(55, 1)),
            Some((VersionId::new(3), 128))
        );
        assert!(h.summaries_since(3).is_empty());
        assert!(h.summaries_since(99).is_empty());
    }

    #[test]
    fn latest_toucher_boundary_semantics() {
        let h = VersionHistory::new();
        h.append(summary(1, &[(0, 100)], 128));
        // Adjacent (not overlapping) range does not count as touching.
        assert_eq!(
            h.latest_toucher(VersionId::new(2), ByteRange::new(100, 10)),
            None
        );
        // Empty range touches nothing.
        assert_eq!(
            h.latest_toucher(VersionId::new(2), ByteRange::empty()),
            None
        );
    }
}
