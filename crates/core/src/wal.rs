//! Host-side write-ahead log: absorb checkpoint bursts at memory speed,
//! drain asynchronously in grant order.
//!
//! In [`crate::config::CommitMode::Logged`] a [`crate::Blob::write_list`]
//! appends its extents + payload to this client-side log and returns as
//! soon as the bytes are in host memory — the caller's barrier no longer
//! stalls on version-grant round trips or data transfer. A background
//! drainer ([`crate::Blob::wal_drain`]) pops entries **strictly in
//! append order**, acquires the version ticket for each, and replays it
//! through the unmodified commit pipeline. Because tickets are granted
//! in the drainer's call order (see `atomio_version`), the version
//! oracle observes exactly the sequential order the application saw:
//! the serialization witness of the drained state is the append order
//! itself, and atomic-publish semantics are untouched.
//!
//! The log is **bounded**: once `bytes_pending` exceeds the configured
//! capacity, appends backpressure — [`WriteAheadLog::try_append`]
//! returns a typed [`Error::Busy`] and the blocking path in
//! `write_list` polls (virtual time) until the drainer falls below the
//! low-water mark (half the capacity). The hysteresis keeps a stalled
//! burst from thrashing admission one entry at a time.

use atomio_simgrid::Metrics;
use atomio_types::{Error, ExtentList, Result};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One logged write: the flattened footprint plus its packed payload.
#[derive(Debug, Clone)]
pub struct WalEntry {
    /// 1-based append sequence number; the oracle will grant this entry
    /// version `base + seq`.
    pub seq: u64,
    /// The write's extent list (file-order footprint).
    pub extents: ExtentList,
    /// Payload bytes packed in file order.
    pub payload: Bytes,
    /// Virtual (or caller-supplied monotonic) time of the append, for
    /// the `wal.drain_lag` statistic.
    pub appended_at_ns: u64,
}

#[derive(Debug)]
struct WalState {
    queue: VecDeque<WalEntry>,
    /// Sequence number of the next append (1-based).
    next_seq: u64,
    /// Count of entries popped by the drainer (drained or failed).
    consumed: u64,
    bytes_pending: u64,
    /// Oracle history length at the first append: entry `seq` drains as
    /// version `base + seq`.
    base: Option<u64>,
    /// Set on a rejected append; admission stays closed until the
    /// backlog falls to the low-water mark.
    stalled: bool,
    closed: bool,
    paused: bool,
    /// First replay failure (sticky): the acked write whose payload was
    /// tombstoned instead of published. Surfaced by `Blob::wal_sync`.
    first_drain_error: Option<Error>,
}

/// A bounded, append-only, in-memory write-ahead log (one per blob).
///
/// The core is participant-free so wall-clock harnesses can drive it
/// from plain threads; virtual-time integration (append cost, blocking
/// backpressure, the drain actor) lives in [`crate::Blob`].
#[derive(Debug)]
pub struct WriteAheadLog {
    capacity: u64,
    low_water: u64,
    state: Mutex<WalState>,
    metrics: Metrics,
}

impl WriteAheadLog {
    /// Creates an empty log bounded at `capacity` bytes of pending
    /// payload, with a low-water mark at half the capacity.
    pub fn new(capacity: u64, metrics: Metrics) -> Self {
        WriteAheadLog {
            capacity,
            low_water: capacity / 2,
            state: Mutex::new(WalState {
                queue: VecDeque::new(),
                next_seq: 1,
                consumed: 0,
                bytes_pending: 0,
                base: None,
                stalled: false,
                closed: false,
                paused: false,
                first_drain_error: None,
            }),
            metrics,
        }
    }

    /// Appends one write, or returns a typed [`Error::Busy`] when the
    /// log is over capacity (or still stalled above the low-water mark
    /// after an earlier rejection). An append to an **empty** log always
    /// succeeds, so an entry larger than the whole capacity still makes
    /// progress. `base_hint` is captured as the version base on the
    /// first append (the oracle history length at that moment).
    ///
    /// Returns the entry's 1-based sequence number; the drainer will
    /// commit it as version `base + seq`.
    pub fn try_append(
        &self,
        extents: ExtentList,
        payload: Bytes,
        now_ns: u64,
        base_hint: impl FnOnce() -> u64,
    ) -> Result<u64> {
        let len = payload.len() as u64;
        let mut st = self.state.lock();
        if st.closed {
            return Err(Error::Internal("append to a closed WAL".into()));
        }
        let below_low_water = st.bytes_pending <= self.low_water;
        if st.stalled && below_low_water {
            st.stalled = false;
        }
        let admit = st.queue.is_empty() || (!st.stalled && st.bytes_pending + len <= self.capacity);
        if !admit {
            st.stalled = true;
            self.metrics.counter("wal.busy_rejections").inc();
            return Err(Error::Busy {
                resource: "wal".into(),
                pending_bytes: st.bytes_pending,
                capacity: self.capacity,
            });
        }
        if st.base.is_none() {
            st.base = Some(base_hint());
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.bytes_pending += len;
        st.queue.push_back(WalEntry {
            seq,
            extents,
            payload,
            appended_at_ns: now_ns,
        });
        self.metrics.counter("wal.appends").inc();
        self.metrics
            .counter("wal.depth_peak")
            .record_peak(st.queue.len() as u64);
        self.metrics
            .value_stat("wal.bytes_pending")
            .record(st.bytes_pending);
        Ok(seq)
    }

    /// The oldest pending entry, if any (cloned; `Bytes` payloads are
    /// reference-counted so this is cheap). Returns `None` while paused.
    pub fn peek_front(&self) -> Option<WalEntry> {
        let st = self.state.lock();
        if st.paused {
            return None;
        }
        st.queue.front().cloned()
    }

    /// Pops the front entry after a successful replay. `seq` must be the
    /// front entry's sequence number (drain order is append order).
    pub fn complete_front(&self, seq: u64, now_ns: u64) {
        let mut st = self.state.lock();
        let entry = st.queue.pop_front().expect("complete on an empty WAL");
        assert_eq!(entry.seq, seq, "WAL drained out of order");
        st.bytes_pending -= entry.payload.len() as u64;
        st.consumed += 1;
        self.metrics.counter("wal.drained").inc();
        self.metrics
            .time_stat("wal.drain_lag")
            .record(std::time::Duration::from_nanos(
                now_ns.saturating_sub(entry.appended_at_ns),
            ));
    }

    /// Pops the front entry after a replay failure that still consumed
    /// its version (the commit pipeline tombstoned it). The error is
    /// recorded sticky and surfaced by [`crate::Blob::wal_sync`].
    pub fn fail_front(&self, seq: u64, error: Error, now_ns: u64) {
        self.complete_front(seq, now_ns);
        let mut st = self.state.lock();
        self.metrics.counter("wal.drain_errors").inc();
        if st.first_drain_error.is_none() {
            st.first_drain_error = Some(error);
        }
    }

    /// Version the drainer must be granted for entry `seq` — the log
    /// replays grants in append order, so this is `base + seq`.
    pub fn expected_version(&self, seq: u64) -> u64 {
        self.state.lock().base.unwrap_or(0) + seq
    }

    /// Version the oldest pending entry will build on (`base +
    /// consumed`), or `None` when the queue is empty. A collector must
    /// never retire this version while entries are pending: the next
    /// drain's ticket grants `base + consumed + 1`, and its tree is
    /// built against this snapshot's nodes.
    pub fn drain_base_version(&self) -> Option<u64> {
        let st = self.state.lock();
        if st.queue.is_empty() {
            None
        } else {
            Some(st.base.unwrap_or(0) + st.consumed)
        }
    }

    /// Sequence number of the newest append (0 when nothing was ever
    /// appended): the target a durability barrier waits for.
    pub fn appended_seq(&self) -> u64 {
        self.state.lock().next_seq - 1
    }

    /// True once every entry up to and including `seq` left the queue.
    pub fn drained_through(&self, seq: u64) -> bool {
        self.state.lock().consumed >= seq
    }

    /// Pending entry count.
    pub fn depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Pending payload bytes.
    pub fn bytes_pending(&self) -> u64 {
        self.state.lock().bytes_pending
    }

    /// Marks the log closed: further appends error, and a running
    /// drainer returns once the queue empties.
    pub fn close(&self) {
        self.state.lock().closed = true;
    }

    /// True once [`WriteAheadLog::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Suspends draining: `peek_front` returns `None` until resumed.
    /// Test hook for deterministic fault windows (kill a server while no
    /// entry is in flight).
    pub fn pause(&self) {
        self.state.lock().paused = true;
    }

    /// Resumes draining after [`WriteAheadLog::pause`].
    pub fn resume(&self) {
        self.state.lock().paused = false;
    }

    /// The first replay failure, if any (the log stays usable; the
    /// failed entry's version exists as a tombstone).
    pub fn first_drain_error(&self) -> Option<Error> {
        self.state.lock().first_drain_error.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_types::ByteRange;

    fn ext(len: u64) -> ExtentList {
        ExtentList::single(ByteRange::new(0, len))
    }

    fn payload(len: usize) -> Bytes {
        Bytes::from(vec![0xABu8; len])
    }

    fn wal(capacity: u64) -> WriteAheadLog {
        WriteAheadLog::new(capacity, Metrics::new())
    }

    #[test]
    fn appends_assign_dense_sequence_numbers() {
        let w = wal(1024);
        for expect in 1..=5u64 {
            let seq = w.try_append(ext(10), payload(10), 0, || 0).unwrap();
            assert_eq!(seq, expect);
        }
        assert_eq!(w.depth(), 5);
        assert_eq!(w.bytes_pending(), 50);
        assert_eq!(w.appended_seq(), 5);
    }

    #[test]
    fn at_capacity_appends_busy_with_typed_error() {
        let w = wal(100);
        w.try_append(ext(60), payload(60), 0, || 0).unwrap();
        w.try_append(ext(40), payload(40), 0, || 0).unwrap();
        let err = w.try_append(ext(1), payload(1), 0, || 0).unwrap_err();
        assert_eq!(
            err,
            Error::Busy {
                resource: "wal".into(),
                pending_bytes: 100,
                capacity: 100,
            }
        );
        assert_eq!(w.metrics.counter("wal.busy_rejections").get(), 1);
    }

    #[test]
    fn stall_clears_only_below_low_water_mark() {
        // Capacity 100, low water 50. Fill to 100, stall, then drain one
        // 30-byte entry: 70 pending is over the low-water mark, so the
        // log must KEEP rejecting (hysteresis) even though 70 + 20 < 100
        // would naively fit.
        let w = wal(100);
        for _ in 0..10 {
            w.try_append(ext(10), payload(10), 0, || 0).unwrap();
        }
        assert!(w.try_append(ext(20), payload(20), 0, || 0).is_err());
        for seq in 1..=3u64 {
            w.complete_front(seq, 0);
        }
        assert_eq!(w.bytes_pending(), 70);
        assert!(
            w.try_append(ext(20), payload(20), 0, || 0).is_err(),
            "stalled log admits nothing above the low-water mark"
        );
        for seq in 4..=5u64 {
            w.complete_front(seq, 0);
        }
        assert_eq!(w.bytes_pending(), 50);
        let seq = w.try_append(ext(20), payload(20), 0, || 0).unwrap();
        assert_eq!(seq, 11, "sequence numbering continues across the stall");
    }

    #[test]
    fn entries_never_reorder_across_a_stall() {
        let w = wal(100);
        let mut appended = Vec::new();
        for i in 0..10u64 {
            appended.push(w.try_append(ext(10), payload(10), i, || 0).unwrap());
        }
        assert!(w.try_append(ext(10), payload(10), 10, || 0).is_err());
        // Drain everything, recording pop order.
        let mut popped = Vec::new();
        while let Some(e) = w.peek_front() {
            popped.push(e.seq);
            w.complete_front(e.seq, 100);
        }
        // Stall over; the next append continues the sequence.
        appended.push(w.try_append(ext(10), payload(10), 11, || 0).unwrap());
        let e = w.peek_front().unwrap();
        popped.push(e.seq);
        w.complete_front(e.seq, 101);
        assert_eq!(appended, (1..=11).collect::<Vec<u64>>());
        assert_eq!(popped, appended, "FIFO order survives the stall");
    }

    #[test]
    fn oversized_entry_admitted_when_empty() {
        let w = wal(100);
        let seq = w.try_append(ext(500), payload(500), 0, || 0).unwrap();
        assert_eq!(seq, 1);
        // But nothing more fits behind it.
        assert!(w.try_append(ext(1), payload(1), 0, || 0).is_err());
        w.complete_front(1, 0);
        assert!(w.try_append(ext(1), payload(1), 0, || 0).is_ok());
    }

    #[test]
    fn expected_version_offsets_by_base() {
        let w = wal(1024);
        w.try_append(ext(1), payload(1), 0, || 7).unwrap();
        w.try_append(ext(1), payload(1), 0, || 99).unwrap();
        // Base captured once, at the first append.
        assert_eq!(w.expected_version(1), 8);
        assert_eq!(w.expected_version(2), 9);
    }

    #[test]
    fn close_rejects_appends_and_drain_completes() {
        let w = wal(1024);
        w.try_append(ext(4), payload(4), 0, || 0).unwrap();
        w.close();
        assert!(matches!(
            w.try_append(ext(4), payload(4), 0, || 0),
            Err(Error::Internal(_))
        ));
        assert!(w.is_closed());
        let e = w.peek_front().unwrap();
        w.complete_front(e.seq, 10);
        assert_eq!(w.depth(), 0);
        assert!(w.drained_through(1));
    }

    #[test]
    fn pause_hides_entries_from_the_drainer() {
        let w = wal(1024);
        w.try_append(ext(4), payload(4), 0, || 0).unwrap();
        w.pause();
        assert!(w.peek_front().is_none());
        w.resume();
        assert_eq!(w.peek_front().unwrap().seq, 1);
    }

    #[test]
    fn failed_entries_record_a_sticky_error() {
        let w = wal(1024);
        w.try_append(ext(4), payload(4), 0, || 0).unwrap();
        w.try_append(ext(4), payload(4), 0, || 0).unwrap();
        w.fail_front(1, Error::EmptyAccess, 5);
        w.fail_front(2, Error::Internal("later".into()), 6);
        assert_eq!(w.first_drain_error(), Some(Error::EmptyAccess));
        assert_eq!(w.metrics.counter("wal.drain_errors").get(), 2);
        assert!(w.drained_through(2));
    }

    #[test]
    fn stats_track_depth_peak_and_bytes_pending() {
        let w = wal(1024);
        for _ in 0..4 {
            w.try_append(ext(8), payload(8), 0, || 0).unwrap();
        }
        w.complete_front(1, 0);
        w.try_append(ext(8), payload(8), 0, || 0).unwrap();
        assert_eq!(w.metrics.counter("wal.depth_peak").get(), 4);
        assert_eq!(w.metrics.value_stat("wal.bytes_pending").max(), 32);
        assert_eq!(w.metrics.counter("wal.appends").get(), 5);
        assert_eq!(w.metrics.counter("wal.drained").get(), 1);
    }
}
