//! Distributed lease-based version garbage collection.
//!
//! Versioning never overwrites data, so space grows with every write.
//! The collector reclaims snapshots below a **reclamation floor** while
//! preserving everything reachable from the retained snapshots — shared
//! subtrees and backlink chains keep old chunks alive exactly as long
//! as a live snapshot can still read them.
//!
//! The floor is the minimum of three constraints:
//!
//! 1. **Retention policy** ([`atomio_types::RetentionPolicy`], stored
//!    and durably logged at the version manager): how much history the
//!    blob keeps regardless of readers.
//! 2. **Oldest live lease** ([`atomio_version::LeaseManager`]): an
//!    in-flight reader acquires a time-bounded snapshot lease; its
//!    version — and everything above it — is pinned until the lease is
//!    released or expires. A crashed reader unpins automatically at
//!    expiry; nothing blocks on it.
//! 3. **WAL drain base** ([`crate::WriteAheadLog::drain_base_version`]):
//!    in [`crate::CommitMode::Logged`] the oldest pending log entry
//!    replays against snapshot `base + consumed`, so that version must
//!    survive until the drainer passes it.
//!
//! The first two are computed server-side by
//! [`VersionOracle::gc_floor`]; the third is a host-side clamp applied
//! here, where the log lives.
//!
//! **Why collection can run concurrently with live writers.** A pass
//! first marks everything reachable from versions `>= floor` (where
//! `floor <= latest` as of the pass start), then sweeps only state that
//! is reachable *exclusively* from versions `< floor`. A concurrent
//! writer's new tree links only to nodes of snapshots `>= latest` at
//! its ticket time — never below the floor — and chunks and tree nodes
//! are immutable, so the sweep can race arbitrarily with writes and
//! reads of retained snapshots without synchronization: it only ever
//! deletes state no retained or future snapshot can reach.
//!
//! (The paper defers GC to future work; this subsystem is the obvious
//! next step once versions, leases, and retention are first-class.)

use crate::blob::Blob;
use atomio_meta::TreeReader;
use atomio_simgrid::Participant;
use atomio_types::{ChunkId, Error, ProviderId, Result, VersionId};
use std::collections::{HashMap, HashSet};

/// Outcome of one collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Versions whose exclusive state was reclaimed.
    pub versions_retired: u64,
    /// Metadata nodes evicted.
    pub nodes_evicted: u64,
    /// Chunk evictions issued (counting each replica once per provider).
    pub chunks_evicted: u64,
    /// Payload bytes reclaimed across all providers.
    pub bytes_reclaimed: u64,
}

impl GcReport {
    fn absorb(&mut self, other: GcReport) {
        self.versions_retired += other.versions_retired;
        self.nodes_evicted += other.nodes_evicted;
        self.chunks_evicted += other.chunks_evicted;
        self.bytes_reclaimed += other.bytes_reclaimed;
    }
}

/// Clamps `keep_from` by the host-side WAL drain base: in Logged mode
/// the oldest pending entry's tree is built against snapshot
/// `base + consumed`, which must therefore stay readable.
fn clamp_to_wal(blob: &Blob, keep_from: VersionId) -> VersionId {
    match blob.wal().and_then(|w| w.drain_base_version()) {
        Some(base) => keep_from.min(VersionId::new(base)),
        None => keep_from,
    }
}

/// Retires every published version **strictly below** `keep_from`,
/// keeping all state reachable from versions `>= keep_from`. In
/// [`crate::CommitMode::Logged`] the cutoff is additionally clamped to
/// the WAL's drain base so pending entries are never undercut.
///
/// Retired versions become unreadable ([`atomio_types::Error::MetadataNodeMissing`]);
/// retained versions are untouched. One-shot: walking an
/// already-retired version again would trip over its evicted nodes, so
/// repeated collection must go through [`GcCoordinator`], which tracks
/// the swept cursor.
pub fn collect_below(p: &Participant, blob: &Blob, keep_from: VersionId) -> Result<GcReport> {
    let keep_from = clamp_to_wal(blob, keep_from);
    collect_range(p, blob, VersionId::new(1), keep_from)
}

/// The shared mark-and-sweep: retires versions in `[from, keep_from)`,
/// marking from `keep_from..=latest`. Versions below `from` are assumed
/// already retired (their nodes are gone and are not walked). The mark
/// set being a superset of every later pass's retained set is what
/// makes capped incremental passes safe: state shared with a
/// not-yet-swept version `>= keep_from` stays alive until the cursor
/// passes it.
fn collect_range(
    p: &Participant,
    blob: &Blob,
    from: VersionId,
    keep_from: VersionId,
) -> Result<GcReport> {
    let vm = blob.version_manager();
    let latest = vm.latest(p)?.version;
    let keep_from = keep_from.min(latest); // never retire the latest snapshot
    let reader = TreeReader::new(blob.meta_store().as_ref());

    let mut report = GcReport::default();
    if from >= keep_from {
        return Ok(report);
    }

    // Mark: everything reachable from retained snapshots.
    let mut live_nodes = HashSet::new();
    let mut live_chunks: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
    let mut v = keep_from;
    while v <= latest {
        let snap = vm.snapshot(p, v)?;
        live_nodes.extend(reader.reachable_nodes(p, snap.root)?);
        live_chunks.extend(reader.referenced_chunks(p, snap.root)?);
        v = v.successor();
    }

    // Sweep: walk retired snapshots and evict what the retained set does
    // not reach.
    let mut dead_nodes = Vec::new();
    let mut seen_nodes = HashSet::new();
    let mut dead_chunks: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
    let mut v = from;
    while v < keep_from {
        let snap = vm.snapshot(p, v)?;
        // A missing node below this snapshot means an earlier collector
        // (this one or a predecessor before a restart) already swept it:
        // skip rather than fail, making collection idempotent. Whatever
        // such a version shared with a retained snapshot is in the mark
        // set regardless, so skipping never strands live state.
        let nodes = match reader.reachable_nodes(p, snap.root) {
            Ok(nodes) => nodes,
            Err(Error::MetadataNodeMissing(_)) => {
                v = v.successor();
                continue;
            }
            Err(e) => return Err(e),
        };
        let chunks = match reader.referenced_chunks(p, snap.root) {
            Ok(chunks) => chunks,
            Err(Error::MetadataNodeMissing(_)) => {
                v = v.successor();
                continue;
            }
            Err(e) => return Err(e),
        };
        for key in nodes {
            if !live_nodes.contains(&key) && seen_nodes.insert(key) {
                dead_nodes.push(key);
            }
        }
        for (chunk, homes) in chunks {
            if !live_chunks.contains_key(&chunk) {
                dead_chunks.insert(chunk, homes);
            }
        }
        report.versions_retired += 1;
        v = v.successor();
    }
    report.nodes_evicted = blob.meta_store().evict_batch(&dead_nodes);
    // Evicted nodes must not be resurrected from the client cache.
    if report.nodes_evicted > 0 {
        if let Some(cache) = blob.node_cache() {
            cache.clear();
        }
    }
    // Group evictions per provider and issue one batch each — a single
    // RPC per provider in a remote deployment.
    let mut per_provider: HashMap<ProviderId, Vec<ChunkId>> = HashMap::new();
    for (chunk, homes) in dead_chunks {
        for home in homes {
            per_provider.entry(home).or_default().push(chunk);
        }
    }
    for (home, chunks) in per_provider {
        let provider = blob.provider_manager().provider(home)?;
        report.bytes_reclaimed += provider.evict_chunk_batch(&chunks);
        report.chunks_evicted += chunks.len() as u64;
    }
    Ok(report)
}

/// Outcome of one [`GcCoordinator`] pass: the reclamation totals plus
/// the floor inputs the pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcPassReport {
    /// What the pass reclaimed.
    pub report: GcReport,
    /// The reclamation floor the pass collected up to (after the WAL
    /// clamp and the per-pass cap).
    pub swept_below: VersionId,
    /// Live leases at the version manager when the floor was computed.
    pub leases_active: u64,
    /// Leases that lapsed without release, cumulative at the manager.
    pub lease_expirations: u64,
}

/// The reclamation driver: runs incremental collection passes
/// concurrently with live writers and readers.
///
/// Each pass asks the version oracle for the current floor
/// (`min(retention, oldest live lease)`), clamps it by the host-side
/// WAL drain base, caps the work at [`GcCoordinator::with_pass_cap`]
/// versions, and collects from its persistent cursor up to the capped
/// floor. The cursor guarantees no version is walked twice, so passes
/// can run back-to-back or on a timer, interleaved freely with writes.
///
/// Records `gc.*` metrics on the store's registry: pass counts and
/// timing, versions/nodes/chunks/bytes reclaimed, live-lease gauge and
/// expiration counter.
#[derive(Debug)]
pub struct GcCoordinator {
    blob: Blob,
    /// Everything strictly below this version is already reclaimed.
    swept_below: VersionId,
    /// Max versions retired per pass (work cap).
    pass_cap: u64,
    /// Manager-side cumulative expiration count at the last pass, so the
    /// metrics counter advances by deltas.
    seen_expirations: u64,
}

impl GcCoordinator {
    /// Default per-pass work cap, in versions retired.
    pub const DEFAULT_PASS_CAP: u64 = 64;

    /// Creates a coordinator for `blob` with the default pass cap.
    /// Nothing runs until [`GcCoordinator::run_pass`] is called.
    pub fn new(blob: Blob) -> Self {
        GcCoordinator {
            blob,
            swept_below: VersionId::new(1),
            pass_cap: Self::DEFAULT_PASS_CAP,
            seen_expirations: 0,
        }
    }

    /// Sets the per-pass work cap (versions retired per pass; min 1).
    pub fn with_pass_cap(mut self, cap: u64) -> Self {
        self.pass_cap = cap.max(1);
        self
    }

    /// The cursor: every version strictly below it has been reclaimed.
    pub fn swept_below(&self) -> VersionId {
        self.swept_below
    }

    /// Runs one collection pass. Returns the pass report; a pass that
    /// finds the floor at or below the cursor is a cheap no-op (one
    /// floor RPC, no tree traffic).
    pub fn run_pass(&mut self, p: &Participant) -> Result<GcPassReport> {
        let blob = self.blob.clone();
        let metrics = blob.metrics().clone();
        let start = p.now();
        let info = blob.version_manager().gc_floor(p)?;
        let floor = clamp_to_wal(&blob, info.floor);
        // Work cap: retire at most `pass_cap` versions this pass.
        let target = floor.min(VersionId::new(
            self.swept_below.raw().saturating_add(self.pass_cap),
        ));
        // The oracle's floor is never above its latest, so the capped
        // target is exactly what collect_range sweeps.
        let report = if target > self.swept_below {
            let r = collect_range(p, &blob, self.swept_below, target)?;
            self.swept_below = target;
            r
        } else {
            GcReport::default()
        };

        metrics.counter("gc.passes").inc();
        metrics
            .counter("gc.versions_retired")
            .add(report.versions_retired);
        metrics
            .counter("gc.nodes_evicted")
            .add(report.nodes_evicted);
        metrics
            .counter("gc.chunks_evicted")
            .add(report.chunks_evicted);
        metrics
            .counter("gc.bytes_reclaimed")
            .add(report.bytes_reclaimed);
        metrics.time_stat("gc.pass_time").record(p.now() - start);
        metrics
            .value_stat("gc.leases_active")
            .record(info.leases_active);
        metrics
            .counter("gc.lease_expirations")
            .add(info.lease_expirations.saturating_sub(self.seen_expirations));
        self.seen_expirations = self.seen_expirations.max(info.lease_expirations);

        Ok(GcPassReport {
            report,
            swept_below: self.swept_below,
            leases_active: info.leases_active,
            lease_expirations: info.lease_expirations,
        })
    }

    /// Runs passes until the floor stops moving (each pass retires at
    /// most the cap): the stop-the-world ablation arm, and a
    /// convenience for tests. Returns the merged totals.
    pub fn run_to_floor(&mut self, p: &Participant) -> Result<GcPassReport> {
        let mut merged = self.run_pass(p)?;
        loop {
            let pass = self.run_pass(p)?;
            if pass.report.versions_retired == 0 {
                merged.swept_below = pass.swept_below;
                merged.leases_active = pass.leases_active;
                merged.lease_expirations = pass.lease_expirations;
                return Ok(merged);
            }
            merged.report.absorb(pass.report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use atomio_types::{Error, ExtentList, RetentionPolicy};
    use bytes::Bytes;

    fn store() -> Store {
        Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4),
        )
    }

    #[test]
    fn gc_reclaims_fully_overwritten_versions() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 and v2 fully overwrite the same leaf-aligned region.
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            blob.write(p, 0, Bytes::from(vec![2u8; 128])).unwrap();
            let before_bytes: u64 = s
                .providers()
                .providers()
                .iter()
                .map(|pr| pr.bytes_stored())
                .sum();
            assert_eq!(before_bytes, 256);

            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            assert_eq!(report.versions_retired, 1);
            assert_eq!(report.bytes_reclaimed, 128);
            assert!(report.nodes_evicted > 0);

            // Latest still reads fine.
            assert_eq!(blob.read(p, 0, 128).unwrap(), vec![2u8; 128]);
            // Retired version is gone.
            let err = blob
                .read_at(
                    p,
                    VersionId::new(1),
                    &ExtentList::from_pairs([(0u64, 128u64)]),
                )
                .unwrap_err();
            assert!(matches!(err, Error::MetadataNodeMissing(_)));
        });
    }

    #[test]
    fn gc_preserves_shared_state() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 writes two leaves; v2 overwrites only the first.
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            blob.write(p, 0, Bytes::from(vec![2u8; 64])).unwrap();
            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            // v1's second-leaf chunk is shared with v2 and must survive.
            assert_eq!(report.bytes_reclaimed, 64);
            let got = blob.read(p, 0, 128).unwrap();
            assert_eq!(&got[..64], &[2u8; 64][..]);
            assert_eq!(&got[64..], &[1u8; 64][..]);
        });
    }

    #[test]
    fn gc_preserves_backlinked_partial_leaves() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 writes a whole leaf; v2 overwrites only 16 bytes of it.
            blob.write(p, 0, Bytes::from(vec![1u8; 64])).unwrap();
            blob.write(p, 8, Bytes::from(vec![2u8; 16])).unwrap();
            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            // v2's leaf backlinks into v1's leaf: nothing reclaimable.
            assert_eq!(report.bytes_reclaimed, 0);
            let got = blob.read(p, 0, 64).unwrap();
            assert_eq!(&got[..8], &[1u8; 8][..]);
            assert_eq!(&got[8..24], &[2u8; 16][..]);
            assert_eq!(&got[24..], &[1u8; 40][..]);
        });
    }

    #[test]
    fn gc_never_retires_latest() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from(vec![1u8; 64])).unwrap();
            // Ask to retire everything below v99: clamped to latest (v1).
            let report = collect_below(p, &blob, VersionId::new(99)).unwrap();
            assert_eq!(report.versions_retired, 0);
            assert_eq!(blob.read(p, 0, 64).unwrap(), vec![1u8; 64]);
        });
    }

    #[test]
    fn gc_on_empty_blob_is_noop() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let report = collect_below(p, &blob, VersionId::new(5)).unwrap();
            assert_eq!(report, GcReport::default());
        });
    }

    #[test]
    fn logged_mode_clamps_collection_to_the_wal_drain_base() {
        // Regression: in CommitMode::Logged the oldest pending log entry
        // replays against snapshot `base + consumed`; a collector asked
        // to retire past it must be clamped or the drain would rebuild
        // against evicted metadata.
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_commit_mode(crate::CommitMode::Logged),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // Drain v1..v3 inline, then leave two entries pending.
            for k in 0..3u64 {
                blob.write(p, 0, Bytes::from(vec![k as u8 + 1; 64]))
                    .unwrap();
                blob.wal_drain_one(p).unwrap();
            }
            blob.write(p, 0, Bytes::from(vec![9u8; 64])).unwrap();
            blob.write(p, 0, Bytes::from(vec![10u8; 64])).unwrap();
            assert_eq!(blob.wal().unwrap().drain_base_version(), Some(3));

            // Ask to retire everything below v99: the WAL clamp must hold
            // the line at v3 (= base + consumed), not latest.
            let report = collect_below(p, &blob, VersionId::new(99)).unwrap();
            assert_eq!(report.versions_retired, 2, "only v1 and v2 retired");

            // The pending entries drain cleanly against the kept base...
            blob.wal_drain_one(p).unwrap().unwrap();
            blob.wal_drain_one(p).unwrap().unwrap();
            assert!(blob.wal().unwrap().first_drain_error().is_none());
            assert_eq!(blob.read(p, 0, 64).unwrap(), vec![10u8; 64]);
            // ...and with the queue empty the clamp disengages.
            assert_eq!(blob.wal().unwrap().drain_base_version(), None);
        });
    }

    #[test]
    fn coordinator_honors_retention_leases_and_pass_cap() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let mut gc = GcCoordinator::new(blob.clone()).with_pass_cap(2);
            blob.set_retention(p, RetentionPolicy::KeepLast(2)).unwrap();
            for k in 0..6u64 {
                blob.write(p, 0, Bytes::from(vec![k as u8 + 1; 64]))
                    .unwrap();
            }
            // A lease on v2 pins the floor below the retention cutoff.
            let grant = blob.lease_acquire(p, VersionId::new(2), 60_000).unwrap();
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report.versions_retired, 1, "only v1 reclaimable");
            assert_eq!(pass.leases_active, 1);
            assert_eq!(gc.swept_below(), VersionId::new(2));
            // The leased snapshot still reads.
            let ext = ExtentList::from_pairs([(0u64, 64u64)]);
            assert_eq!(
                blob.read_leased(p, &grant, 60_000, &ext).unwrap(),
                vec![2u8; 64]
            );

            // Release: the floor jumps to KeepLast(2) = v5, but the pass
            // cap (2) limits each pass.
            blob.lease_release(p, grant.lease).unwrap();
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report.versions_retired, 2, "capped at 2 per pass");
            assert_eq!(gc.swept_below(), VersionId::new(4));
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report.versions_retired, 1, "v4; floor reached");
            assert_eq!(gc.swept_below(), VersionId::new(5));
            // Retained tail reads fine.
            assert_eq!(blob.read(p, 0, 64).unwrap(), vec![6u8; 64]);
            assert_eq!(
                blob.read_at(p, VersionId::new(5), &ext).unwrap(),
                vec![5u8; 64]
            );
        });
        assert_eq!(s.metrics().counter("gc.versions_retired").get(), 4);
        assert_eq!(s.metrics().counter("gc.passes").get(), 3);
        assert!(s.metrics().counter("gc.bytes_reclaimed").get() >= 4 * 64);
    }

    #[test]
    fn expired_lease_unpins_and_read_leased_reports_it() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let mut gc = GcCoordinator::new(blob.clone());
            blob.set_retention(p, RetentionPolicy::KeepLast(1)).unwrap();
            blob.write(p, 0, Bytes::from(vec![1u8; 64])).unwrap();
            blob.write(p, 0, Bytes::from(vec![2u8; 64])).unwrap();
            // A 1 ms lease on v1, then let it lapse (virtual time).
            let grant = blob.lease_acquire(p, VersionId::new(1), 1).unwrap();
            p.sleep(std::time::Duration::from_millis(5));
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report.versions_retired, 1, "expired lease unpins");
            assert_eq!(pass.leases_active, 0);
            assert_eq!(pass.lease_expirations, 1);

            // The reader comes back from its stall: typed error, not torn
            // bytes or missing-chunk noise.
            let ext = ExtentList::from_pairs([(0u64, 64u64)]);
            let err = blob.read_leased(p, &grant, 60_000, &ext).unwrap_err();
            assert_eq!(
                err,
                Error::LeaseExpired {
                    lease: grant.lease,
                    version: VersionId::new(1)
                }
            );
        });
        assert_eq!(s.metrics().counter("gc.lease_expirations").get(), 1);
    }

    #[test]
    fn default_retention_from_store_config_drives_the_floor() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_retention(RetentionPolicy::KeepLast(1)),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let mut gc = GcCoordinator::new(blob.clone());
            for k in 0..3u64 {
                blob.write(p, 0, Bytes::from(vec![k as u8 + 1; 64]))
                    .unwrap();
            }
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report.versions_retired, 2);
            assert_eq!(blob.read(p, 0, 64).unwrap(), vec![3u8; 64]);
        });
    }

    #[test]
    fn incremental_passes_preserve_state_shared_with_unswept_versions() {
        // v1 writes two leaves; v2..v4 overwrite only the first. With a
        // pass cap of 1, v1 is swept while v2 and v3 (also below the
        // floor) are not — v1's second-leaf chunk is reachable from them
        // only via the unswept tail, and must survive until the cursor
        // passes. The final state must read back intact throughout.
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let mut gc = GcCoordinator::new(blob.clone()).with_pass_cap(1);
            blob.set_retention(p, RetentionPolicy::KeepLast(1)).unwrap();
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            for k in 0..3u64 {
                blob.write(p, 0, Bytes::from(vec![k as u8 + 2; 64]))
                    .unwrap();
            }
            for expect_sweep in [2u64, 3, 4] {
                let pass = gc.run_pass(p).unwrap();
                assert_eq!(pass.report.versions_retired, 1);
                assert_eq!(gc.swept_below(), VersionId::new(expect_sweep));
                // The latest snapshot reads back whole after every pass:
                // first leaf from v4's chain, second leaf from v1.
                let got = blob.read(p, 0, 128).unwrap();
                assert_eq!(&got[64..], &[1u8; 64][..], "shared leaf survives");
            }
            // Floor reached: nothing further to do.
            let pass = gc.run_pass(p).unwrap();
            assert_eq!(pass.report, GcReport::default());
        });
    }
}
