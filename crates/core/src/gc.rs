//! Version garbage collection.
//!
//! Versioning never overwrites data, so space grows with every write. The
//! collector reclaims snapshots older than a retention cutoff while
//! preserving everything reachable from the retained snapshots — shared
//! subtrees and backlink chains keep old chunks alive exactly as long as
//! a live snapshot can still read them.
//!
//! (The paper defers GC to future work; this implements the obvious
//! mark-and-sweep over the reachability structure of the trees.)

use crate::blob::Blob;
use atomio_meta::TreeReader;
use atomio_simgrid::Participant;
use atomio_types::{ChunkId, ProviderId, Result, VersionId};
use std::collections::{HashMap, HashSet};

/// Outcome of one collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Versions whose exclusive state was reclaimed.
    pub versions_retired: u64,
    /// Metadata nodes evicted.
    pub nodes_evicted: u64,
    /// Chunks evicted (counting each replica once per provider).
    pub chunks_evicted: u64,
    /// Payload bytes reclaimed across all providers.
    pub bytes_reclaimed: u64,
}

/// Retires every published version **strictly below** `keep_from`,
/// keeping all state reachable from versions `>= keep_from`.
///
/// Retired versions become unreadable ([`atomio_types::Error::MetadataNodeMissing`]);
/// retained versions are untouched.
pub fn collect_below(p: &Participant, blob: &Blob, keep_from: VersionId) -> Result<GcReport> {
    let vm = blob.version_manager();
    let latest = vm.latest(p)?.version;
    let keep_from = keep_from.min(latest); // never retire the latest snapshot
    let reader = TreeReader::new(blob.meta_store().as_ref());

    // Mark: everything reachable from retained snapshots.
    let mut live_nodes = HashSet::new();
    let mut live_chunks: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
    let mut v = keep_from;
    while v <= latest {
        let snap = vm.snapshot(p, v)?;
        live_nodes.extend(reader.reachable_nodes(p, snap.root)?);
        live_chunks.extend(reader.referenced_chunks(p, snap.root)?);
        v = v.successor();
    }

    // Sweep: walk retired snapshots and evict what the retained set does
    // not reach.
    let mut report = GcReport::default();
    let mut dead_nodes = HashSet::new();
    let mut dead_chunks: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
    let mut v = VersionId::new(1);
    while v < keep_from {
        let snap = vm.snapshot(p, v)?;
        for key in reader.reachable_nodes(p, snap.root)? {
            if !live_nodes.contains(&key) {
                dead_nodes.insert(key);
            }
        }
        for (chunk, homes) in reader.referenced_chunks(p, snap.root)? {
            if !live_chunks.contains_key(&chunk) {
                dead_chunks.insert(chunk, homes);
            }
        }
        report.versions_retired += 1;
        v = v.successor();
    }
    for key in dead_nodes {
        blob.meta_store().evict(key);
        report.nodes_evicted += 1;
    }
    // Evicted nodes must not be resurrected from the client cache.
    if report.nodes_evicted > 0 {
        if let Some(cache) = blob.node_cache() {
            cache.clear();
        }
    }
    for (chunk, homes) in dead_chunks {
        for home in homes {
            let provider = blob.provider_manager().provider(home)?;
            let reclaimed = provider.evict_chunk(chunk);
            if reclaimed > 0 {
                report.chunks_evicted += 1;
                report.bytes_reclaimed += reclaimed;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use atomio_types::{Error, ExtentList};
    use bytes::Bytes;

    fn store() -> Store {
        Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4),
        )
    }

    #[test]
    fn gc_reclaims_fully_overwritten_versions() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 and v2 fully overwrite the same leaf-aligned region.
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            blob.write(p, 0, Bytes::from(vec![2u8; 128])).unwrap();
            let before_bytes: u64 = s
                .providers()
                .providers()
                .iter()
                .map(|pr| pr.bytes_stored())
                .sum();
            assert_eq!(before_bytes, 256);

            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            assert_eq!(report.versions_retired, 1);
            assert_eq!(report.bytes_reclaimed, 128);
            assert!(report.nodes_evicted > 0);

            // Latest still reads fine.
            assert_eq!(blob.read(p, 0, 128).unwrap(), vec![2u8; 128]);
            // Retired version is gone.
            let err = blob
                .read_at(
                    p,
                    VersionId::new(1),
                    &ExtentList::from_pairs([(0u64, 128u64)]),
                )
                .unwrap_err();
            assert!(matches!(err, Error::MetadataNodeMissing(_)));
        });
    }

    #[test]
    fn gc_preserves_shared_state() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 writes two leaves; v2 overwrites only the first.
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            blob.write(p, 0, Bytes::from(vec![2u8; 64])).unwrap();
            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            // v1's second-leaf chunk is shared with v2 and must survive.
            assert_eq!(report.bytes_reclaimed, 64);
            let got = blob.read(p, 0, 128).unwrap();
            assert_eq!(&got[..64], &[2u8; 64][..]);
            assert_eq!(&got[64..], &[1u8; 64][..]);
        });
    }

    #[test]
    fn gc_preserves_backlinked_partial_leaves() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            // v1 writes a whole leaf; v2 overwrites only 16 bytes of it.
            blob.write(p, 0, Bytes::from(vec![1u8; 64])).unwrap();
            blob.write(p, 8, Bytes::from(vec![2u8; 16])).unwrap();
            let report = collect_below(p, &blob, VersionId::new(2)).unwrap();
            // v2's leaf backlinks into v1's leaf: nothing reclaimable.
            assert_eq!(report.bytes_reclaimed, 0);
            let got = blob.read(p, 0, 64).unwrap();
            assert_eq!(&got[..8], &[1u8; 8][..]);
            assert_eq!(&got[8..24], &[2u8; 16][..]);
            assert_eq!(&got[24..], &[1u8; 40][..]);
        });
    }

    #[test]
    fn gc_never_retires_latest() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from(vec![1u8; 64])).unwrap();
            // Ask to retire everything below v99: clamped to latest (v1).
            let report = collect_below(p, &blob, VersionId::new(99)).unwrap();
            assert_eq!(report.versions_retired, 0);
            assert_eq!(blob.read(p, 0, 64).unwrap(), vec![1u8; 64]);
        });
    }

    #[test]
    fn gc_on_empty_blob_is_noop() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let report = collect_below(p, &blob, VersionId::new(5)).unwrap();
            assert_eq!(report, GcReport::default());
        });
    }
}
