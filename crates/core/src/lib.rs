//! # atomio-core
//!
//! The paper's primary contribution, assembled: a **versioning storage
//! backend with native support for non-contiguous, MPI-atomic accesses**.
//!
//! A [`Store`] wires together the substrates:
//!
//! * data providers + provider manager ([`atomio_provider`]) — striping;
//! * metadata store + copy-on-write segment trees ([`atomio_meta`]) —
//!   shadowing;
//! * version manager ([`atomio_version`]) — ticketing and ordered,
//!   O(1) publication.
//!
//! A [`Blob`] is one shared file. Its write API is *vectored and atomic*:
//! [`Blob::write_list`] takes a whole extent list (the flattened footprint
//! of a non-contiguous MPI-I/O request) and applies it as **one snapshot**.
//! Concurrent `write_list` calls never wait for each other during data
//! transfer or metadata construction; the version manager orders the
//! resulting snapshots, so every read observes a state equal to replaying
//! complete writes in version order — exactly the MPI atomic-mode
//! guarantee, with no locks anywhere on the I/O path.
//!
//! ```
//! use atomio_core::{Store, StoreConfig};
//! use atomio_simgrid::clock::run_actors;
//! use atomio_types::ExtentList;
//!
//! let store = Store::new(StoreConfig::default().with_zero_cost());
//! let blob = store.create_blob();
//! let (results, _time) = run_actors(1, |_, p| {
//!     // A non-contiguous atomic write of two regions.
//!     let extents = ExtentList::from_pairs([(0u64, 4u64), (8, 4)]);
//!     let payload = bytes::Bytes::from_static(b"aaaabbbb");
//!     let v = blob.write_list(p, &extents, payload).unwrap();
//!     blob.read_at(p, v, &extents).unwrap()
//! });
//! assert_eq!(&results[0][..], b"aaaabbbb");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blob;
pub mod clone;
pub mod config;
pub mod gc;
pub mod namespace;
pub mod routing;
pub mod store;
pub mod wal;

pub use blob::{Blob, ReadVersion};
pub use config::{
    CommitMode, MetaCommitMode, MetaReadMode, StoreConfig, TransferMode, TransportMode,
};
pub use gc::{collect_below, GcCoordinator, GcPassReport, GcReport};
pub use routing::{slot_for_blob, slot_for_name, SlotMap, SlotRange, SLOT_COUNT};
pub use store::{Store, VersionOracleFactory};
pub use wal::WriteAheadLog;
