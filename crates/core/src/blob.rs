//! The blob handle: the versioning, natively non-contiguous data API.
//!
//! The write path implements the paper's pipeline:
//!
//! 1. **Ticket** — one RPC to the version manager assigns the snapshot
//!    version and records the write summary (so concurrent writers can
//!    link to this write's future metadata).
//! 2. **Data transfer** — every leaf-aligned piece becomes a fresh
//!    immutable chunk placed by the provider manager. Transfers of
//!    concurrent writers overlap freely: no locks, no waiting.
//! 3. **Metadata build** — a complete copy-on-write tree is constructed
//!    from the write summaries alone (see `atomio-meta`), again with no
//!    coordination.
//! 4. **Publish** — one RPC flips the snapshot visible once all
//!    predecessors are visible; the writer then waits (virtual time) for
//!    its own version, which preserves MPI semantics ("when the call
//!    returns, the data is visible").

use crate::config::{CommitMode, TransferMode};
use crate::wal::WriteAheadLog;
use atomio_meta::{
    LeafEntry, NodeCache, NodeStore, TreeBuilder, TreeConfig, TreeReader, VersionHistory,
};
use atomio_provider::{GetRequest, ProviderManager};
use atomio_simgrid::{Metrics, Participant};
use atomio_types::ids::IdAllocator;
use atomio_types::RetentionPolicy;
use atomio_types::{BlobId, ByteRange, ChunkGeometry, Error, ExtentList, Result, VersionId};
use atomio_version::{LeaseGrant, SnapshotRecord, VersionOracle};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

/// Which snapshot a read targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadVersion {
    /// The latest published snapshot at the time the read starts.
    #[default]
    Latest,
    /// A specific published version.
    At(VersionId),
}

#[derive(Debug)]
struct BlobInner {
    id: BlobId,
    geometry: ChunkGeometry,
    providers: Arc<ProviderManager>,
    meta: Arc<dyn NodeStore>,
    history: Arc<VersionHistory>,
    vm: Arc<dyn VersionOracle>,
    chunk_ids: Arc<IdAllocator>,
    config: crate::StoreConfig,
    metrics: Metrics,
    /// Client-side cache of immutable tree nodes (None when disabled).
    node_cache: Option<NodeCache>,
    /// Host-side write-ahead log (Some iff `CommitMode::Logged`).
    wal: Option<Arc<WriteAheadLog>>,
}

/// A handle to one blob (shared file). Cheap to clone; all clones see the
/// same state.
#[derive(Debug, Clone)]
pub struct Blob {
    inner: Arc<BlobInner>,
}

impl Blob {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        id: BlobId,
        geometry: ChunkGeometry,
        providers: Arc<ProviderManager>,
        meta: Arc<dyn NodeStore>,
        vm: Arc<dyn VersionOracle>,
        chunk_ids: Arc<IdAllocator>,
        config: crate::StoreConfig,
        metrics: Metrics,
    ) -> Self {
        let node_cache =
            (config.meta_cache_nodes > 0).then(|| NodeCache::new(config.meta_cache_nodes));
        // The tree builder and `changed_extents` read summaries from the
        // same history the oracle appends grants to — for a remote
        // oracle that is its client-side mirror.
        let history = Arc::clone(vm.history());
        let wal = (config.commit_mode == CommitMode::Logged)
            .then(|| Arc::new(WriteAheadLog::new(config.wal_capacity, metrics.clone())));
        Blob {
            inner: Arc::new(BlobInner {
                id,
                geometry,
                providers,
                meta,
                history,
                vm,
                chunk_ids,
                config,
                metrics,
                node_cache,
                wal,
            }),
        }
    }

    /// The blob's id.
    pub fn id(&self) -> BlobId {
        self.inner.id
    }

    /// The blob's version oracle (exposed for experiments and GC): the
    /// in-process [`atomio_version::VersionManager`] in a Loopback
    /// deployment, a remote proxy when the version manager runs as its
    /// own service.
    pub fn version_manager(&self) -> &Arc<dyn VersionOracle> {
        &self.inner.vm
    }

    /// Striping geometry.
    pub fn geometry(&self) -> ChunkGeometry {
        self.inner.geometry
    }

    /// The latest published snapshot record. Fallible because a remote
    /// version oracle can surface a typed transport error.
    pub fn latest(&self, p: &Participant) -> Result<SnapshotRecord> {
        self.inner.vm.latest(p)
    }

    /// Size of the blob in the given snapshot.
    pub fn size_at(&self, p: &Participant, version: VersionId) -> Result<u64> {
        Ok(self.inner.vm.snapshot(p, version)?.size)
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Atomically writes a **non-contiguous** set of regions as one
    /// snapshot: the paper's dedicated storage-backend API (List-I/O
    /// style). `payload` holds the regions' bytes packed in file order
    /// and must be exactly `extents.total_len()` long.
    ///
    /// Returns the snapshot version the write produced. In
    /// [`CommitMode::Direct`] that snapshot is published when the call
    /// returns; in [`CommitMode::Logged`] the write was appended to the
    /// host-side write-ahead log (blocking, in virtual time, while the
    /// log is over capacity) and the returned version is the one the
    /// background drainer will publish for it — call [`Blob::wal_sync`]
    /// for a durability barrier.
    pub fn write_list(
        &self,
        p: &Participant,
        extents: &ExtentList,
        payload: Bytes,
    ) -> Result<VersionId> {
        self.write_list_inner(p, extents, payload, true)
    }

    /// Like [`Blob::write_list`], but when the write-ahead log is over
    /// capacity this returns the typed [`Error::Busy`] instead of
    /// blocking. In [`CommitMode::Direct`] it is identical to
    /// `write_list`.
    pub fn try_write_list(
        &self,
        p: &Participant,
        extents: &ExtentList,
        payload: Bytes,
    ) -> Result<VersionId> {
        self.write_list_inner(p, extents, payload, false)
    }

    fn write_list_inner(
        &self,
        p: &Participant,
        extents: &ExtentList,
        payload: Bytes,
        block: bool,
    ) -> Result<VersionId> {
        let inner = &self.inner;
        if extents.is_empty() {
            return Err(Error::EmptyAccess);
        }
        if payload.len() as u64 != extents.total_len() {
            return Err(Error::BufferSizeMismatch {
                expected: extents.total_len(),
                actual: payload.len() as u64,
            });
        }
        match inner.config.commit_mode {
            CommitMode::Direct => {
                // 1. Ticket.
                let ticket = inner.vm.ticket(p, extents)?;
                self.commit_write(p, ticket, extents, payload)
            }
            CommitMode::Logged => self.wal_append(p, extents, payload, block),
        }
    }

    /// Atomically appends `payload` at the end of the blob. The append
    /// position is assigned atomically with the version number, so
    /// concurrent appenders get disjoint back-to-back regions. Returns
    /// the snapshot version and the offset the data landed at.
    ///
    /// Not available in [`CommitMode::Logged`]: the log's version
    /// prediction requires every write to flow through it, and an append
    /// position cannot be known before its ticket is granted.
    pub fn append(&self, p: &Participant, payload: Bytes) -> Result<(VersionId, u64)> {
        if payload.is_empty() {
            return Err(Error::EmptyAccess);
        }
        if self.inner.wal.is_some() {
            return Err(Error::Unsupported("append in CommitMode::Logged"));
        }
        let (ticket, extents) = self.inner.vm.ticket_append(p, payload.len() as u64)?;
        let offset = extents.covering_range().offset;
        let version = self.commit_write(p, ticket, &extents, payload)?;
        Ok((version, offset))
    }

    /// The shared ticket-to-publication pipeline (steps 2–4 of the write
    /// path; the ticket came from either `write_list` or `append`).
    fn commit_write(
        &self,
        p: &Participant,
        ticket: atomio_version::Ticket,
        extents: &ExtentList,
        payload: Bytes,
    ) -> Result<VersionId> {
        let inner = &self.inner;
        inner.metrics.counter("core.writes").inc();
        inner
            .metrics
            .counter("core.bytes_written")
            .add(payload.len() as u64);

        let builder = TreeBuilder::new(
            inner.id,
            inner.meta.as_ref(),
            &inner.history,
            TreeConfig::new(inner.geometry.chunk_size()),
        )
        .with_mode(inner.config.meta_commit_mode)
        .with_metrics(inner.metrics.clone());

        let attempt = || -> Result<atomio_meta::NodeKey> {
            // 2. Data transfer: one immutable chunk per leaf-aligned
            //    piece. The piece list is assembled first (pre-sized from
            //    the extent/leaf count, so nothing reallocates
            //    mid-transfer), then either pushed one chunk at a time
            //    (Serial) or booked as one batch (Pipelined).
            let transfer_start = p.now();
            let leaf_count: usize = extents
                .with_buffer_offsets()
                .map(|(range, _)| {
                    if range.len == 0 {
                        0
                    } else {
                        (inner.geometry.chunk_index(range.end() - 1)
                            - inner.geometry.chunk_index(range.offset)
                            + 1) as usize
                    }
                })
                .sum();
            let mut spans: Vec<ByteRange> = Vec::with_capacity(leaf_count);
            let mut puts: Vec<(atomio_types::ChunkId, Bytes)> = Vec::with_capacity(leaf_count);
            let mut cursor = 0u64;
            for (range, _buf_off) in extents.with_buffer_offsets() {
                for span in inner.geometry.split_range(range) {
                    let slice = payload.slice(
                        (cursor + (span.absolute.offset - range.offset)) as usize
                            ..(cursor + (span.absolute.end() - range.offset)) as usize,
                    );
                    spans.push(span.absolute);
                    puts.push((inner.chunk_ids.next_chunk(), slice));
                }
                cursor += range.len;
            }
            let depth = inner.metrics.value_stat("core.transfer_depth");
            let mut entries = Vec::with_capacity(puts.len());
            match inner.config.transfer_mode {
                TransferMode::Serial => {
                    for ((chunk, slice), &span) in puts.iter().zip(&spans) {
                        depth.record(1);
                        let homes = inner.providers.put_replicated(
                            p,
                            *chunk,
                            slice,
                            inner.config.replication,
                            inner.config.min_replicas,
                        )?;
                        entries.push(LeafEntry {
                            file_range: span,
                            chunk: *chunk,
                            chunk_offset: 0,
                            homes,
                        });
                    }
                }
                TransferMode::Pipelined => {
                    depth.record(puts.len() as u64);
                    let outcomes = inner.providers.put_batch_replicated(
                        p,
                        &puts,
                        inner.config.replication,
                        inner.config.min_replicas,
                    );
                    for ((outcome, (chunk, _)), &span) in
                        outcomes.into_iter().zip(&puts).zip(&spans)
                    {
                        entries.push(LeafEntry {
                            file_range: span,
                            chunk: *chunk,
                            chunk_offset: 0,
                            homes: outcome?,
                        });
                    }
                }
            }
            inner
                .metrics
                .time_stat("core.transfer_time")
                .record(p.now() - transfer_start);

            // 3. Metadata build (no coordination with concurrent
            //    writers).
            let build_start = p.now();
            let root = builder.build_update(p, ticket.version, ticket.capacity, &entries)?;
            inner
                .metrics
                .time_stat("core.meta_build_time")
                .record(p.now() - build_start);
            Ok(root)
        };

        let (root, outcome) = match attempt() {
            Ok(root) => (root, Ok(ticket.version)),
            Err(e) => {
                // The ticket's summary is already visible to concurrent
                // writers, so the version must still materialize — as a
                // tombstone (semantic no-op) — or the publication
                // pipeline and every deterministic link to this version
                // would wedge forever.
                inner.metrics.counter("core.aborted_writes").inc();
                let tombstone =
                    builder.build_tombstone(p, ticket.version, ticket.capacity, extents)?;
                (tombstone, Err(e))
            }
        };

        // 4. Publish and wait for visibility.
        let publish_start = p.now();
        inner.vm.publish(p, ticket, root)?;
        inner.vm.wait_published(p, ticket.version)?;
        inner
            .metrics
            .time_stat("core.publish_wait_time")
            .record(p.now() - publish_start);
        outcome
    }

    /// Atomically writes one contiguous region (convenience wrapper).
    pub fn write(&self, p: &Participant, offset: u64, payload: Bytes) -> Result<VersionId> {
        let extents = ExtentList::single(ByteRange::new(offset, payload.len() as u64));
        self.write_list(p, &extents, payload)
    }

    // ------------------------------------------------------------------
    // Write-ahead log (CommitMode::Logged)
    // ------------------------------------------------------------------

    /// The blob's write-ahead log (`Some` iff the store runs in
    /// [`CommitMode::Logged`]). Exposed for drain actors, stats, and the
    /// pause/close test hooks.
    pub fn wal(&self) -> Option<&Arc<WriteAheadLog>> {
        self.inner.wal.as_ref()
    }

    fn wal_handle(&self) -> Result<&Arc<WriteAheadLog>> {
        self.inner
            .wal
            .as_ref()
            .ok_or(Error::Unsupported("WAL requires CommitMode::Logged"))
    }

    /// The Logged-mode ack path: append to the log at host-memory speed
    /// and predict the version the drainer will be granted. The
    /// prediction holds because grants are dense, the drainer tickets in
    /// append order, and a Logged blob has a single writer while its log
    /// is open.
    fn wal_append(
        &self,
        p: &Participant,
        extents: &ExtentList,
        payload: Bytes,
        block: bool,
    ) -> Result<VersionId> {
        let inner = &self.inner;
        let wal = self.wal_handle()?;
        let start = p.now();
        let history = &inner.history;
        let attempt = || {
            wal.try_append(extents.clone(), payload.clone(), p.now_ns(), || {
                history.len() as u64
            })
        };
        let seq = if block {
            p.poll_until(|| match attempt() {
                Ok(seq) => Some(Ok(seq)),
                Err(Error::Busy { .. }) => None,
                Err(e) => Some(Err(e)),
            })?
        } else {
            attempt()?
        };
        p.sleep(inner.config.cost.host_append(payload.len() as u64));
        inner
            .metrics
            .time_stat("wal.append_time")
            .record(p.now() - start);
        Ok(VersionId::new(wal.expected_version(seq)))
    }

    /// Replays the oldest pending log entry through the normal commit
    /// pipeline: ticket, transfer, metadata build, publish. Returns
    /// `Ok(None)` when the log is empty or paused.
    ///
    /// A failure while acquiring the ticket (e.g. the version server is
    /// down) leaves the entry in the log and returns the typed error —
    /// retrying later continues with **no hole**. A failure after the
    /// ticket is granted consumes the entry: the commit pipeline
    /// materializes the version as a tombstone, the error is recorded
    /// sticky on the log (surfaced by [`Blob::wal_sync`]), and draining
    /// continues. (As in Direct mode, a crash *inside* the tombstone
    /// path itself would leave the publication pipeline wedged; the log
    /// narrows that window but cannot remove it.)
    pub fn wal_drain_one(&self, p: &Participant) -> Result<Option<VersionId>> {
        let wal = self.wal_handle()?;
        let Some(entry) = wal.peek_front() else {
            return Ok(None);
        };
        let ticket = self.inner.vm.ticket(p, &entry.extents)?;
        let expected = wal.expected_version(entry.seq);
        if ticket.version.raw() != expected {
            return Err(Error::Internal(format!(
                "WAL replay order violated: entry {} granted version {} (expected {expected}); \
                 a Logged blob must have a single writer while its log is open",
                entry.seq,
                ticket.version.raw()
            )));
        }
        let version = ticket.version;
        match self.commit_write(p, ticket, &entry.extents, entry.payload.clone()) {
            Ok(v) => {
                wal.complete_front(entry.seq, p.now_ns());
                Ok(Some(v))
            }
            Err(e) => {
                wal.fail_front(entry.seq, e, p.now_ns());
                Ok(Some(version))
            }
        }
    }

    /// The background drain actor's main loop: replays log entries in
    /// append order until the log is [closed](WriteAheadLog::close) *and*
    /// empty, backing off (virtual time) while the log is idle or the
    /// backend is unreachable. Transport errors are retried — counted in
    /// `wal.drain_retries` — so a killed-and-restarted service resumes
    /// the drain with no hole. Returns the number of entries drained.
    pub fn wal_drain(&self, p: &Participant) -> Result<u64> {
        const BACKOFF_MIN: Duration = Duration::from_micros(10);
        const BACKOFF_MAX: Duration = Duration::from_millis(10);
        let wal = Arc::clone(self.wal_handle()?);
        let mut drained = 0u64;
        let mut backoff = BACKOFF_MIN;
        loop {
            match self.wal_drain_one(p) {
                Ok(Some(_)) => {
                    drained += 1;
                    backoff = BACKOFF_MIN;
                }
                Ok(None) => {
                    if wal.is_closed() && wal.depth() == 0 {
                        return Ok(drained);
                    }
                    p.sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
                Err(Error::Transport { .. }) => {
                    self.inner.metrics.counter("wal.drain_retries").inc();
                    p.sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Durability barrier: blocks (virtual time) until every write
    /// appended to the log so far has drained, then surfaces the first
    /// replay failure, if any. Requires a running drain actor (see
    /// [`Blob::wal_drain`]). In [`CommitMode::Direct`] writes are
    /// durable when they return, so this is a no-op.
    pub fn wal_sync(&self, p: &Participant) -> Result<()> {
        let Some(wal) = self.inner.wal.as_ref() else {
            return Ok(());
        };
        let target = wal.appended_seq();
        p.poll_until(|| wal.drained_through(target).then_some(()));
        match wal.first_drain_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads a non-contiguous set of regions from a snapshot, returning
    /// the bytes packed in file order. Never-written bytes inside the
    /// snapshot's size read as zeros; reading beyond the snapshot's size
    /// is an error.
    pub fn read_list(
        &self,
        p: &Participant,
        version: ReadVersion,
        extents: &ExtentList,
    ) -> Result<Vec<u8>> {
        let inner = &self.inner;
        if extents.is_empty() {
            return Err(Error::EmptyAccess);
        }
        let snap = match version {
            ReadVersion::Latest => inner.vm.latest(p)?,
            ReadVersion::At(v) => inner.vm.snapshot(p, v)?,
        };
        if extents.covering_range().end() > snap.size {
            return Err(Error::OutOfBounds {
                requested_end: extents.covering_range().end(),
                snapshot_size: snap.size,
            });
        }
        inner.metrics.counter("core.reads").inc();
        inner
            .metrics
            .counter("core.bytes_read")
            .add(extents.total_len());

        let reader = match &inner.node_cache {
            Some(cache) => TreeReader::with_cache(inner.meta.as_ref(), cache),
            None => TreeReader::new(inner.meta.as_ref()),
        }
        .with_read_mode(inner.config.meta_read_mode);
        let resolve_start = p.now();
        let pieces = reader.resolve(p, snap.root, extents)?;
        inner
            .metrics
            .time_stat("core.meta_resolve_time")
            .record(p.now() - resolve_start);

        // Materialize into a packed buffer.
        let mut out = vec![0u8; extents.total_len() as usize];
        // Map absolute file offsets to packed-buffer offsets — computed
        // once and reused by both the request-assembly pass and the
        // copy-back pass.
        let offsets: Vec<(ByteRange, u64)> = extents.with_buffer_offsets().collect();
        let dst_of = |file_range: ByteRange| -> usize {
            // Locate the extent containing this piece (pieces never cross
            // extent boundaries because the resolver was given the same
            // extent list).
            let idx = offsets.partition_point(|(r, _)| r.end() <= file_range.offset);
            let (ext_range, buf_off) = offsets[idx];
            debug_assert!(ext_range.contains_range(file_range));
            (buf_off + file_range.offset - ext_range.offset) as usize
        };
        // Assemble the chunk fetches (holes read as zeros and fetch
        // nothing).
        let mut requests: Vec<GetRequest> = Vec::with_capacity(pieces.len());
        let mut targets: Vec<usize> = Vec::with_capacity(pieces.len());
        for piece in &pieces {
            let Some(src) = &piece.source else { continue };
            requests.push(GetRequest {
                chunk: src.chunk,
                homes: src.homes.clone(),
                range: ByteRange::new(src.chunk_offset, piece.file_range.len),
            });
            targets.push(dst_of(piece.file_range));
        }
        let depth = inner.metrics.value_stat("core.transfer_depth");
        let transfer_start = p.now();
        match inner.config.transfer_mode {
            TransferMode::Serial => {
                for (req, &dst) in requests.iter().zip(&targets) {
                    depth.record(1);
                    let data = inner
                        .providers
                        .get_with_failover(p, req.chunk, &req.homes, req.range)?;
                    out[dst..dst + data.len()].copy_from_slice(&data);
                }
            }
            TransferMode::Pipelined => {
                depth.record(requests.len() as u64);
                let results = inner.providers.get_batch_with_failover(p, &requests);
                for (result, &dst) in results.into_iter().zip(&targets) {
                    let data = result?;
                    out[dst..dst + data.len()].copy_from_slice(&data);
                }
            }
        }
        inner
            .metrics
            .time_stat("core.transfer_time")
            .record(p.now() - transfer_start);
        Ok(out)
    }

    /// Reads the given extents of a specific published version.
    pub fn read_at(
        &self,
        p: &Participant,
        version: VersionId,
        extents: &ExtentList,
    ) -> Result<Vec<u8>> {
        self.read_list(p, ReadVersion::At(version), extents)
    }

    /// Reads one contiguous region of the latest snapshot.
    pub fn read(&self, p: &Participant, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.read_list(
            p,
            ReadVersion::Latest,
            &ExtentList::single(ByteRange::new(offset, len)),
        )
    }

    // ------------------------------------------------------------------
    // Snapshot leases and retention (distributed GC)
    // ------------------------------------------------------------------

    /// Sets this blob's snapshot retention policy — the floor below
    /// which the collector may retire versions (leases can pin the floor
    /// lower still). Durable when the version oracle is.
    pub fn set_retention(&self, p: &Participant, policy: RetentionPolicy) -> Result<()> {
        self.inner.vm.set_retention(p, policy)
    }

    /// Acquires a time-bounded snapshot lease pinning `version` (and
    /// every later snapshot) against collection until the lease expires
    /// or is released. Renew before the TTL lapses to keep reading.
    pub fn lease_acquire(
        &self,
        p: &Participant,
        version: VersionId,
        ttl_ms: u64,
    ) -> Result<LeaseGrant> {
        self.inner.vm.lease_acquire(p, version, ttl_ms)
    }

    /// Acquires a lease on the latest published snapshot.
    pub fn lease_latest(&self, p: &Participant, ttl_ms: u64) -> Result<LeaseGrant> {
        let latest = self.inner.vm.latest(p)?.version;
        self.inner.vm.lease_acquire(p, latest, ttl_ms)
    }

    /// Extends a live lease by `ttl_ms` from now;
    /// [`Error::LeaseExpired`] once it has lapsed.
    pub fn lease_renew(&self, p: &Participant, lease: u64, ttl_ms: u64) -> Result<LeaseGrant> {
        self.inner.vm.lease_renew(p, lease, ttl_ms)
    }

    /// Releases a lease, unpinning its snapshot (idempotent).
    pub fn lease_release(&self, p: &Participant, lease: u64) -> Result<()> {
        self.inner.vm.lease_release(p, lease)
    }

    /// Reads under a snapshot lease: renews the lease (rearming it for
    /// `ttl_ms`), then reads the leased version. A renewal that finds
    /// the lease lapsed — or a read that trips over reclaimed state
    /// because the lease expired mid-flight — surfaces the typed
    /// [`Error::LeaseExpired`] instead of missing-chunk noise or torn
    /// bytes; anything read successfully under a live lease is a
    /// consistent snapshot (chunks and tree nodes are immutable, so the
    /// collector can only remove them, never change them).
    pub fn read_leased(
        &self,
        p: &Participant,
        grant: &LeaseGrant,
        ttl_ms: u64,
        extents: &ExtentList,
    ) -> Result<Vec<u8>> {
        let expired_err = || Error::LeaseExpired {
            lease: grant.lease,
            version: grant.version,
        };
        self.inner
            .vm
            .lease_renew(p, grant.lease, ttl_ms)
            .map_err(|e| match e {
                Error::LeaseExpired { .. } => expired_err(),
                other => other,
            })?;
        match self.read_list(p, ReadVersion::At(grant.version), extents) {
            Err(e @ (Error::ChunkNotFound { .. } | Error::MetadataNodeMissing(_))) => {
                // The snapshot was reclaimed under us: only possible if
                // the lease lapsed after the renewal above. Probe it to
                // report the precise cause.
                match self.inner.vm.lease_renew(p, grant.lease, ttl_ms) {
                    Err(Error::LeaseExpired { .. }) => Err(expired_err()),
                    _ => Err(e),
                }
            }
            other => other,
        }
    }

    /// The set of bytes that changed between two published snapshots
    /// (`from` exclusive, `to` inclusive): the union of the write
    /// summaries of versions `from+1 ..= to`. Computed from metadata
    /// alone — no data is read. Useful for incremental consumers
    /// ("re-render only what moved since the last frame").
    pub fn changed_extents(
        &self,
        p: &Participant,
        from: VersionId,
        to: VersionId,
    ) -> Result<ExtentList> {
        if from > to {
            return Err(Error::Internal(format!(
                "changed_extents range inverted: {from} > {to}"
            )));
        }
        // Both endpoints must be published snapshots.
        let _ = self.inner.vm.snapshot(p, from)?;
        let _ = self.inner.vm.snapshot(p, to)?;
        let mut changed = ExtentList::new();
        let mut v = from.successor();
        while v <= to {
            let summary = self
                .inner
                .history
                .summary(v)
                .ok_or(Error::VersionNotFound {
                    blob: self.inner.id,
                    version: v,
                })?;
            changed = changed.union(&summary.extents);
            v = v.successor();
        }
        Ok(changed)
    }

    // ------------------------------------------------------------------
    // Internals exposed to sibling modules
    // ------------------------------------------------------------------

    /// Commits a snapshot whose data chunks already exist (blob cloning):
    /// tickets `extents`, builds the tree from the given entries, and
    /// publishes. Entries must be leaf-aligned for *this* blob's
    /// geometry — true for clones because source and clone share the
    /// store's chunk size.
    pub(crate) fn adopt_entries(
        &self,
        p: &Participant,
        extents: &ExtentList,
        mut entries: Vec<LeafEntry>,
    ) -> Result<VersionId> {
        let inner = &self.inner;
        entries.sort_by_key(|e| e.file_range.offset);
        let ticket = inner.vm.ticket(p, extents)?;
        let builder = TreeBuilder::new(
            inner.id,
            inner.meta.as_ref(),
            &inner.history,
            TreeConfig::new(inner.geometry.chunk_size()),
        )
        .with_mode(inner.config.meta_commit_mode)
        .with_metrics(inner.metrics.clone());
        let root = builder.build_update(p, ticket.version, ticket.capacity, &entries)?;
        inner.vm.publish(p, ticket, root)?;
        inner.vm.wait_published(p, ticket.version)?;
        Ok(ticket.version)
    }

    pub(crate) fn meta_store(&self) -> &Arc<dyn NodeStore> {
        &self.inner.meta
    }

    pub(crate) fn provider_manager(&self) -> &Arc<ProviderManager> {
        &self.inner.providers
    }

    pub(crate) fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The client-side node cache, if enabled (exposed for stats and for
    /// GC invalidation).
    pub fn node_cache(&self) -> Option<&NodeCache> {
        self.inner.node_cache.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use atomio_types::stamp::WriteStamp;
    use atomio_types::ClientId;

    fn store() -> Store {
        Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_meta_shards(2),
        )
    }

    #[test]
    fn contiguous_roundtrip() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let v = blob.write(p, 10, Bytes::from_static(b"hello")).unwrap();
            assert_eq!(v, VersionId::new(1));
            assert_eq!(blob.read(p, 10, 5).unwrap(), b"hello");
            // Unwritten prefix reads as zeros.
            assert_eq!(blob.read(p, 0, 3).unwrap(), [0, 0, 0]);
        });
    }

    #[test]
    fn noncontiguous_roundtrip_with_holes() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let extents = ExtentList::from_pairs([(0u64, 4u64), (100, 4), (300, 4)]);
            let payload = Bytes::from_static(b"aaaabbbbcccc");
            blob.write_list(p, &extents, payload).unwrap();
            assert_eq!(blob.read(p, 0, 4).unwrap(), b"aaaa");
            assert_eq!(blob.read(p, 100, 4).unwrap(), b"bbbb");
            assert_eq!(blob.read(p, 300, 4).unwrap(), b"cccc");
            // The gap is zeros.
            assert_eq!(blob.read(p, 4, 8).unwrap(), [0u8; 8]);
            // And a vectored read packs in file order.
            let got = blob.read_list(p, ReadVersion::Latest, &extents).unwrap();
            assert_eq!(got, b"aaaabbbbcccc");
        });
    }

    #[test]
    fn payload_size_must_match() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let extents = ExtentList::from_pairs([(0u64, 4u64)]);
            let err = blob
                .write_list(p, &extents, Bytes::from_static(b"toolong"))
                .unwrap_err();
            assert_eq!(
                err,
                Error::BufferSizeMismatch {
                    expected: 4,
                    actual: 7
                }
            );
            assert_eq!(
                blob.write_list(p, &ExtentList::new(), Bytes::new())
                    .unwrap_err(),
                Error::EmptyAccess
            );
        });
    }

    #[test]
    fn reads_are_versioned() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let v1 = blob.write(p, 0, Bytes::from_static(b"1111")).unwrap();
            let v2 = blob.write(p, 0, Bytes::from_static(b"2222")).unwrap();
            let ext = ExtentList::from_pairs([(0u64, 4u64)]);
            assert_eq!(blob.read_at(p, v1, &ext).unwrap(), b"1111");
            assert_eq!(blob.read_at(p, v2, &ext).unwrap(), b"2222");
            assert_eq!(
                blob.read_list(p, ReadVersion::Latest, &ext).unwrap(),
                b"2222"
            );
            // Version 0 is the empty snapshot: reading beyond size fails.
            assert!(matches!(
                blob.read_at(p, VersionId::INITIAL, &ext),
                Err(Error::OutOfBounds { .. })
            ));
        });
    }

    #[test]
    fn read_beyond_size_rejected() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"abcd")).unwrap();
            let err = blob.read(p, 2, 10).unwrap_err();
            assert_eq!(
                err,
                Error::OutOfBounds {
                    requested_end: 12,
                    snapshot_size: 4
                }
            );
        });
    }

    #[test]
    fn overlapping_atomic_writes_serialize_by_version() {
        let s = store();
        let blob = s.create_blob();
        // Two writers race on overlapping non-contiguous extents; each
        // writer's bytes carry its stamp. The final state must equal
        // replaying the writes in version order.
        let exts = [
            ExtentList::from_pairs([(0u64, 96u64), (128, 96)]),
            ExtentList::from_pairs([(64u64, 96u64), (192, 96)]),
        ];
        let stamps = [
            WriteStamp::new(ClientId::new(0), 0),
            WriteStamp::new(ClientId::new(1), 0),
        ];
        let exts_ref = &exts;
        let stamps_ref = &stamps;
        let blob_ref = &blob;
        let (versions, _) = run_actors(2, move |i, p| {
            let payload = Bytes::from(stamps_ref[i].payload_for(&exts_ref[i]));
            blob_ref.write_list(p, &exts_ref[i], payload).unwrap()
        });
        run_actors(1, |_, p| {
            // Replay model in version order.
            let mut model = vec![0u8; 288];
            let mut order: Vec<usize> = vec![0, 1];
            order.sort_by_key(|&i| versions[i]);
            for &i in &order {
                for (r, _) in exts[i].with_buffer_offsets() {
                    let mut buf = vec![0u8; r.len as usize];
                    stamps[i].fill_range(r.offset, &mut buf);
                    model[r.offset as usize..r.end() as usize].copy_from_slice(&buf);
                }
            }
            let got = blob.read(p, 0, 288).unwrap();
            assert_eq!(got, model, "final state must be a serial replay");
        });
    }

    #[test]
    fn many_concurrent_writers_roundtrip() {
        let s = store();
        let blob = s.create_blob();
        let n = 8usize;
        let blob_ref = &blob;
        let (results, _) = run_actors(n, move |i, p| {
            let stamp = WriteStamp::new(ClientId::new(i as u64), 0);
            // Interleaved strided extents: writer i owns stripes i, i+n, ...
            let ext =
                ExtentList::from_pairs((0..4u64).map(|k| ((i as u64 + k * n as u64) * 32, 32u64)));
            let payload = Bytes::from(stamp.payload_for(&ext));
            let v = blob_ref.write_list(p, &ext, payload).unwrap();
            // Read own data back at own version.
            let got = blob_ref.read_at(p, v, &ext).unwrap();
            assert_eq!(got, stamp.payload_for(&ext), "writer {i} readback");
            v
        });
        // All versions distinct and dense.
        let mut vs: Vec<u64> = results.iter().map(|v| v.raw()).collect();
        vs.sort_unstable();
        assert_eq!(vs, (1..=n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn node_cache_accelerates_repeated_reads() {
        // With the grid5000 cost model, the second identical read must be
        // cheaper than the first: the tree traversal hits the client
        // cache instead of the metadata shards.
        let s = Store::new(
            StoreConfig::default()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_meta_cache(1024),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from(vec![1u8; 1024])).unwrap();
            let ext = ExtentList::from_pairs([(0u64, 1024u64)]);
            let t0 = p.now();
            blob.read_list(p, ReadVersion::Latest, &ext).unwrap();
            let cold = p.now() - t0;
            let t1 = p.now();
            blob.read_list(p, ReadVersion::Latest, &ext).unwrap();
            let warm = p.now() - t1;
            assert!(warm < cold, "warm {warm:?} vs cold {cold:?}");
        });
        let cache = blob.node_cache().expect("cache enabled");
        let (hits, misses) = cache.stats();
        assert!(hits > 0, "no cache hits recorded");
        assert!(misses > 0);
    }

    #[test]
    fn cache_disabled_when_configured_off() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_meta_cache(0),
        );
        let blob = s.create_blob();
        assert!(blob.node_cache().is_none());
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"x")).unwrap();
            assert_eq!(blob.read(p, 0, 1).unwrap(), b"x");
        });
    }

    #[test]
    fn changed_extents_unions_summaries() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let v1 = blob.write(p, 0, Bytes::from(vec![1u8; 100])).unwrap();
            let v2 = blob.write(p, 200, Bytes::from(vec![2u8; 50])).unwrap();
            let v3 = blob.write(p, 90, Bytes::from(vec![3u8; 20])).unwrap();
            // Everything since the beginning.
            let all = blob.changed_extents(p, VersionId::INITIAL, v3).unwrap();
            assert_eq!(all, ExtentList::from_pairs([(0u64, 110u64), (200, 50)]));
            // Incremental: only v3's footprint.
            let inc = blob.changed_extents(p, v2, v3).unwrap();
            assert_eq!(inc, ExtentList::from_pairs([(90u64, 20u64)]));
            // Empty interval.
            assert!(blob.changed_extents(p, v2, v2).unwrap().is_empty());
            // Inverted and unpublished intervals error.
            assert!(blob.changed_extents(p, v3, v1).is_err());
            assert!(blob
                .changed_extents(p, VersionId::INITIAL, VersionId::new(99))
                .is_err());
        });
    }

    #[test]
    fn append_returns_version_and_offset() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let (v1, o1) = blob.append(p, Bytes::from_static(b"alpha")).unwrap();
            let (v2, o2) = blob.append(p, Bytes::from_static(b"beta")).unwrap();
            assert_eq!((v1.raw(), o1), (1, 0));
            assert_eq!((v2.raw(), o2), (2, 5));
            assert_eq!(blob.read(p, 0, 9).unwrap(), b"alphabeta");
            assert!(matches!(
                blob.append(p, Bytes::new()),
                Err(Error::EmptyAccess)
            ));
        });
    }

    #[test]
    fn concurrent_appends_never_overlap() {
        let s = store();
        let blob = s.create_blob();
        let blob_ref = &blob;
        let (results, _) = run_actors(8, move |i, p| {
            let payload = vec![i as u8 + 1; 50];
            blob_ref.append(p, Bytes::from(payload)).unwrap()
        });
        let mut offsets: Vec<u64> = results.iter().map(|&(_, o)| o).collect();
        offsets.sort_unstable();
        assert_eq!(offsets, (0..8u64).map(|i| i * 50).collect::<Vec<_>>());
        // Each append's region holds exactly its writer's fill byte.
        run_actors(1, |_, p| {
            for &(v, o) in &results {
                let _ = v;
                let got = blob.read(p, o, 50).unwrap();
                assert!(got.iter().all(|&b| b == got[0]) && got[0] != 0);
            }
        });
    }

    #[test]
    fn metrics_are_recorded() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"xyz")).unwrap();
            blob.read(p, 0, 3).unwrap();
        });
        assert_eq!(s.metrics().counter("core.writes").get(), 1);
        assert_eq!(s.metrics().counter("core.bytes_written").get(), 3);
        assert_eq!(s.metrics().counter("core.reads").get(), 1);
        assert_eq!(s.metrics().counter("core.bytes_read").get(), 3);
    }

    #[test]
    fn logged_writes_ack_early_and_drain_to_the_same_state() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_meta_shards(2)
                .with_commit_mode(crate::CommitMode::Logged),
        );
        let blob = s.create_blob();
        let blob_ref = &blob;
        let (results, _) = run_actors(2, move |i, p| {
            if i == 0 {
                // Writer: predicted versions come back dense, at memory
                // speed, before anything is published.
                let mut versions = Vec::new();
                for k in 0..5u64 {
                    let v = blob_ref
                        .write(p, k * 32, Bytes::from(vec![k as u8 + 1; 32]))
                        .unwrap();
                    versions.push(v.raw());
                }
                // Durability barrier, then the data is readable.
                blob_ref.wal_sync(p).unwrap();
                for k in 0..5u64 {
                    let got = blob_ref.read(p, k * 32, 32).unwrap();
                    assert_eq!(got, vec![k as u8 + 1; 32], "region {k} after sync");
                }
                blob_ref.wal().unwrap().close();
                versions
            } else {
                let drained = blob_ref.wal_drain(p).unwrap();
                vec![drained]
            }
        });
        assert_eq!(results[0], vec![1, 2, 3, 4, 5], "predicted versions dense");
        assert_eq!(results[1], vec![5], "drainer replayed every entry");
        assert_eq!(s.metrics().counter("wal.appends").get(), 5);
        assert_eq!(s.metrics().counter("wal.drained").get(), 5);
    }

    #[test]
    fn logged_backpressure_blocks_writer_until_drain_frees_space() {
        // Capacity of two 32-byte entries: the writer must stall on the
        // third append until the drainer catches up — and every write
        // still lands, in order.
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_meta_shards(2)
                .with_commit_mode(crate::CommitMode::Logged)
                .with_wal_capacity(64),
        );
        let blob = s.create_blob();
        let blob_ref = &blob;
        let n = 10u64;
        run_actors(2, move |i, p| {
            if i == 0 {
                for k in 0..n {
                    blob_ref
                        .write(p, 0, Bytes::from(vec![k as u8 + 1; 32]))
                        .unwrap();
                }
                blob_ref.wal_sync(p).unwrap();
                // Last write wins: the drain preserved append order.
                assert_eq!(blob_ref.read(p, 0, 32).unwrap(), vec![n as u8; 32]);
                blob_ref.wal().unwrap().close();
            } else {
                assert_eq!(blob_ref.wal_drain(p).unwrap(), n);
            }
        });
        assert!(
            s.metrics().counter("wal.busy_rejections").get() > 0,
            "the writer never hit backpressure — capacity too generous for the test"
        );
        assert!(s.metrics().counter("wal.depth_peak").get() <= 3);
    }

    #[test]
    fn try_write_list_surfaces_busy_without_a_drainer() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4)
                .with_meta_shards(2)
                .with_commit_mode(crate::CommitMode::Logged)
                .with_wal_capacity(64),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let ext = ExtentList::single(ByteRange::new(0, 64));
            blob.try_write_list(p, &ext, Bytes::from(vec![1u8; 64]))
                .unwrap();
            let err = blob
                .try_write_list(p, &ext, Bytes::from(vec![2u8; 64]))
                .unwrap_err();
            assert!(
                matches!(err, Error::Busy { capacity: 64, .. }),
                "expected Busy, got {err:?}"
            );
            // Draining inline frees the space and the retry succeeds.
            let v = blob.wal_drain_one(p).unwrap();
            assert_eq!(v, Some(VersionId::new(1)));
            blob.try_write_list(p, &ext, Bytes::from(vec![2u8; 64]))
                .unwrap();
        });
    }

    #[test]
    fn append_is_unsupported_in_logged_mode() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_commit_mode(crate::CommitMode::Logged),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            assert!(matches!(
                blob.append(p, Bytes::from_static(b"x")),
                Err(Error::Unsupported(_))
            ));
        });
    }

    #[test]
    fn direct_mode_has_no_wal() {
        let s = store();
        let blob = s.create_blob();
        assert!(blob.wal().is_none());
        run_actors(1, |_, p| {
            // wal_sync is a no-op barrier in Direct mode...
            blob.wal_sync(p).unwrap();
            // ...but the drain entry points are typed errors.
            assert!(matches!(blob.wal_drain_one(p), Err(Error::Unsupported(_))));
        });
    }

    #[test]
    fn replication_masks_provider_failure() {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(3)
                .with_replication(2, 2),
        );
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"safe")).unwrap();
            // Kill every provider holding the primary replica one at a
            // time; as long as one replica survives, reads succeed.
            s.faults().fail_provider(atomio_types::ProviderId::new(0));
            let got = blob.read(p, 0, 4).unwrap();
            assert_eq!(got, b"safe");
        });
    }
}
