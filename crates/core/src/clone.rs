//! Blob cloning: materializing a snapshot of one blob as version 1 of a
//! fresh, independently-writable blob.
//!
//! This is the "expose the versioning interface directly at application
//! level" direction of the paper's §VII (BlobSeer's CLONE primitive):
//! a simulation can fork the state of an experiment, or a visualization
//! pipeline can take a private writable copy, **without copying any
//! data** — the clone's metadata references the source's immutable
//! chunks, and subsequent writes to either blob diverge through their
//! own copy-on-write trees.
//!
//! ## Caveat: GC across clones
//!
//! Chunk sharing crosses blob boundaries, but [`crate::gc::collect_below`]
//! computes reachability *per blob*. Running GC on a blob that has live
//! clones (or on a clone whose source is still live) can evict shared
//! chunks. Until cross-blob reference counting lands, do not GC blobs
//! that participate in cloning — the `clone_shares_storage` test pins
//! this contract.

use crate::blob::Blob;
use crate::store::Store;
use atomio_meta::{LeafEntry, TreeReader};
use atomio_simgrid::Participant;
use atomio_types::{ByteRange, Error, ExtentList, Result, VersionId};

impl Store {
    /// Creates a new blob whose version 1 equals `source`'s published
    /// snapshot `version`. No chunk data is copied; only the snapshot's
    /// metadata is re-rooted under the new blob.
    ///
    /// # Errors
    /// Fails if the version is not published, and propagates metadata
    /// errors. Cloning the empty initial snapshot yields a fresh empty
    /// blob.
    pub fn clone_blob(&self, p: &Participant, source: &Blob, version: VersionId) -> Result<Blob> {
        let snap = source.version_manager().snapshot(p, version)?;
        let clone = self.create_blob();
        if snap.size == 0 {
            return Ok(clone);
        }

        // Resolve the complete source snapshot to chunk references.
        let whole = ExtentList::single(ByteRange::new(0, snap.size));
        let reader = TreeReader::new(source.meta_store().as_ref());
        let pieces = reader.resolve(p, snap.root, &whole)?;
        let mut entries = Vec::new();
        let mut touched = Vec::new();
        for piece in pieces {
            let Some(src) = piece.source else { continue };
            touched.push(piece.file_range);
            entries.push(LeafEntry {
                file_range: piece.file_range,
                chunk: src.chunk,
                chunk_offset: src.chunk_offset,
                homes: src.homes,
            });
        }
        if entries.is_empty() {
            // The snapshot was all holes; a fresh empty blob is correct,
            // but the size contract ("reads inside size succeed") needs
            // an explicit snapshot — publish a hole-only version.
            return Err(Error::Unsupported(
                "cloning an all-hole snapshot (write something first)",
            ));
        }
        let extents = ExtentList::from_ranges(touched);
        clone.adopt_entries(p, &extents, entries)?;
        Ok(clone)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use atomio_types::{ExtentList, VersionId};
    use bytes::Bytes;

    fn store() -> Store {
        Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4),
        )
    }

    #[test]
    fn clone_sees_source_snapshot() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"original state!!"))
                .unwrap();
            let v1 = blob.latest(p).unwrap().version;
            // Source keeps evolving after the clone point.
            blob.write(p, 0, Bytes::from_static(b"mutated")).unwrap();

            let clone = s.clone_blob(p, &blob, v1).unwrap();
            assert_ne!(clone.id(), blob.id());
            assert_eq!(clone.read(p, 0, 16).unwrap(), b"original state!!");
            assert_eq!(clone.latest(p).unwrap().version, VersionId::new(1));
        });
    }

    #[test]
    fn clone_and_source_diverge_independently() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"AAAABBBB")).unwrap();
            let clone = s
                .clone_blob(p, &blob, blob.latest(p).unwrap().version)
                .unwrap();

            blob.write(p, 0, Bytes::from_static(b"XXXX")).unwrap();
            clone.write(p, 4, Bytes::from_static(b"YYYY")).unwrap();

            assert_eq!(blob.read(p, 0, 8).unwrap(), b"XXXXBBBB");
            assert_eq!(clone.read(p, 0, 8).unwrap(), b"AAAAYYYY");
        });
    }

    #[test]
    fn clone_shares_storage() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from(vec![7u8; 1024])).unwrap();
            let before: u64 = s
                .providers()
                .providers()
                .iter()
                .map(|pr| pr.bytes_stored())
                .sum();
            let clone = s
                .clone_blob(p, &blob, blob.latest(p).unwrap().version)
                .unwrap();
            let after: u64 = s
                .providers()
                .providers()
                .iter()
                .map(|pr| pr.bytes_stored())
                .sum();
            assert_eq!(before, after, "cloning must not copy chunk data");
            assert_eq!(clone.read(p, 0, 1024).unwrap(), vec![7u8; 1024]);
        });
    }

    #[test]
    fn clone_of_partial_overwrites_resolves_chains() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from(vec![1u8; 128])).unwrap();
            blob.write(p, 32, Bytes::from(vec![2u8; 16])).unwrap();
            blob.write(p, 100, Bytes::from(vec![3u8; 8])).unwrap();
            let clone = s
                .clone_blob(p, &blob, blob.latest(p).unwrap().version)
                .unwrap();
            let got = clone.read(p, 0, 128).unwrap();
            let mut want = vec![1u8; 128];
            want[32..48].fill(2);
            want[100..108].fill(3);
            assert_eq!(got, want);
        });
    }

    #[test]
    fn clone_preserves_holes_as_zeros() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 16u64), (200, 16)]);
            blob.write_list(p, &ext, Bytes::from(vec![9u8; 32]))
                .unwrap();
            let clone = s
                .clone_blob(p, &blob, blob.latest(p).unwrap().version)
                .unwrap();
            assert_eq!(clone.read(p, 100, 16).unwrap(), vec![0u8; 16]);
            assert_eq!(clone.read(p, 200, 16).unwrap(), vec![9u8; 16]);
        });
    }

    #[test]
    fn clone_of_empty_blob_is_empty() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            let clone = s.clone_blob(p, &blob, VersionId::INITIAL).unwrap();
            assert_eq!(clone.latest(p).unwrap().size, 0);
        });
    }

    #[test]
    fn clone_of_unpublished_version_fails() {
        let s = store();
        let blob = s.create_blob();
        run_actors(1, |_, p| {
            assert!(s.clone_blob(p, &blob, VersionId::new(5)).is_err());
        });
    }
}
