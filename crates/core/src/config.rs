//! Store configuration.

use atomio_provider::AllocationStrategy;
use atomio_simgrid::CostModel;
use atomio_types::{BackendConfig, RetentionPolicy};
use atomio_version::TicketMode;

pub use atomio_meta::{MetaCommitMode, MetaReadMode};

/// How clients reach the provider and metadata services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// In-process calls with simulated virtual-time costs — the default,
    /// and the mode every committed benchmark result was produced under.
    #[default]
    Loopback,
    /// Real sockets: services are hosted by the `atomio-provider-server`
    /// and `atomio-meta-server` binaries and reached through the
    /// `atomio-rpc` socket transports (multiplexed `RpcMode::Mux` by
    /// default; per-call as the ablation arm). [`crate::Store::new`]
    /// cannot assemble this mode by itself (it has no addresses to
    /// dial); `dial` the remote handles with `atomio-rpc` and pass them
    /// to [`crate::Store::with_substrates`].
    Tcp,
}

/// How the client data path issues chunk transfers (E7 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// One chunk at a time: each transfer completes before the next is
    /// issued. The pre-pipelining data path, kept as the ablation
    /// baseline.
    Serial,
    /// Batched reservations: all chunk requests of a write or read are
    /// booked up front (replica copies concurrently), injections
    /// serialize on the client's own NIC, and the client sleeps once to
    /// the latest completion — BlobSeer-style overlapped striping.
    #[default]
    Pipelined,
}

/// How [`crate::Blob::write_list`] acknowledges a write (E8 ablation
/// knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// The full commit pipeline runs before the call returns: ticket,
    /// data transfer, metadata build, publish. The default, and the mode
    /// every committed benchmark result was produced under.
    #[default]
    Direct,
    /// The write is appended to the host-side write-ahead log
    /// ([`crate::wal::WriteAheadLog`]) and acknowledged at memory speed;
    /// a background drainer replays log entries through the same commit
    /// pipeline strictly in append order, so the version oracle observes
    /// exactly the sequence the application saw. Requires a drain actor
    /// (see [`crate::Blob::wal_drain`]) and assumes this client is the
    /// blob's only writer while the log is open.
    Logged,
}

/// Configuration of a versioning store deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// Striping chunk size == metadata leaf size (power of two).
    pub chunk_size: u64,
    /// Number of data providers.
    pub data_providers: usize,
    /// Number of metadata shards.
    pub meta_shards: usize,
    /// Replicas per chunk (1 = no replication).
    pub replication: usize,
    /// Minimum replicas that must survive fault injection for a write to
    /// succeed.
    pub min_replicas: usize,
    /// Chunk placement policy.
    pub allocation: AllocationStrategy,
    /// Simulated hardware prices.
    pub cost: CostModel,
    /// Publication pipeline mode (E7 ablation knob).
    pub ticket_mode: TicketMode,
    /// Chunk transfer engine mode (E7 ablation knob).
    pub transfer_mode: TransferMode,
    /// Metadata commit engine mode (E7 ablation knob).
    pub meta_commit_mode: MetaCommitMode,
    /// Metadata read engine mode (E7 ablation knob).
    pub meta_read_mode: MetaReadMode,
    /// How clients reach the provider and metadata services.
    pub transport_mode: TransportMode,
    /// Client-side metadata cache size in nodes (0 disables caching).
    pub meta_cache_nodes: usize,
    /// Write acknowledgement mode (E8 ablation knob).
    pub commit_mode: CommitMode,
    /// Byte capacity of the host-side write-ahead log in
    /// [`CommitMode::Logged`]; appends beyond it backpressure (block or
    /// return a typed `Busy`) until the drainer falls below the log's
    /// low-water mark.
    pub wal_capacity: u64,
    /// Default snapshot retention policy applied to every blob at
    /// creation (a blob can still override it per-blob through its
    /// version oracle). [`RetentionPolicy::KeepAll`] — the default —
    /// disables reclamation entirely, preserving the behavior every
    /// committed benchmark result was produced under.
    pub retention: RetentionPolicy,
    /// Storage substrate of every service: in-memory tables
    /// ([`BackendConfig::Memory`], the default and the substrate every
    /// committed benchmark result was produced under) or durable
    /// slot-sharded logs with crash recovery ([`BackendConfig::Disk`]).
    pub backend: BackendConfig,
    /// Seed for every random choice in the store.
    pub seed: u64,
}

impl Default for StoreConfig {
    /// The configuration used by the paper-scale experiments: 64 KiB
    /// chunks striped round-robin over 16 providers, 4 metadata shards,
    /// no replication, Grid'5000-like costs.
    fn default() -> Self {
        StoreConfig {
            chunk_size: 64 * 1024,
            data_providers: 16,
            meta_shards: 4,
            replication: 1,
            min_replicas: 1,
            allocation: AllocationStrategy::RoundRobin,
            cost: CostModel::grid5000(),
            ticket_mode: TicketMode::Pipelined,
            transfer_mode: TransferMode::Pipelined,
            meta_commit_mode: MetaCommitMode::Batched,
            meta_read_mode: MetaReadMode::Batched,
            transport_mode: TransportMode::Loopback,
            meta_cache_nodes: 4096,
            commit_mode: CommitMode::Direct,
            wal_capacity: 64 * 1024 * 1024,
            retention: RetentionPolicy::KeepAll,
            backend: BackendConfig::Memory,
            seed: 0x5EED,
        }
    }
}

impl StoreConfig {
    /// Zero-cost variant for semantics-only tests.
    pub fn with_zero_cost(mut self) -> Self {
        self.cost = CostModel::zero();
        self
    }

    /// Sets the chunk/leaf size.
    pub fn with_chunk_size(mut self, bytes: u64) -> Self {
        self.chunk_size = bytes;
        self
    }

    /// Sets the provider fleet size.
    pub fn with_data_providers(mut self, n: usize) -> Self {
        self.data_providers = n;
        self
    }

    /// Sets the metadata shard count.
    pub fn with_meta_shards(mut self, n: usize) -> Self {
        self.meta_shards = n;
        self
    }

    /// Sets replication (replicas per chunk and the write quorum).
    pub fn with_replication(mut self, replicas: usize, min_ok: usize) -> Self {
        self.replication = replicas;
        self.min_replicas = min_ok;
        self
    }

    /// Sets the allocation strategy.
    pub fn with_allocation(mut self, strategy: AllocationStrategy) -> Self {
        self.allocation = strategy;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the ticket mode.
    pub fn with_ticket_mode(mut self, mode: TicketMode) -> Self {
        self.ticket_mode = mode;
        self
    }

    /// Sets the chunk transfer engine mode.
    pub fn with_transfer_mode(mut self, mode: TransferMode) -> Self {
        self.transfer_mode = mode;
        self
    }

    /// Sets the metadata commit engine mode.
    pub fn with_meta_commit_mode(mut self, mode: MetaCommitMode) -> Self {
        self.meta_commit_mode = mode;
        self
    }

    /// Sets the metadata read engine mode.
    pub fn with_meta_read_mode(mut self, mode: MetaReadMode) -> Self {
        self.meta_read_mode = mode;
        self
    }

    /// Sets the transport mode.
    pub fn with_transport_mode(mut self, mode: TransportMode) -> Self {
        self.transport_mode = mode;
        self
    }

    /// Sets the client-side metadata cache size (0 disables caching).
    pub fn with_meta_cache(mut self, nodes: usize) -> Self {
        self.meta_cache_nodes = nodes;
        self
    }

    /// Sets the write acknowledgement mode.
    pub fn with_commit_mode(mut self, mode: CommitMode) -> Self {
        self.commit_mode = mode;
        self
    }

    /// Sets the write-ahead log capacity in bytes (Logged mode only).
    pub fn with_wal_capacity(mut self, bytes: u64) -> Self {
        self.wal_capacity = bytes;
        self
    }

    /// Sets the default snapshot retention policy stamped onto every
    /// blob at creation.
    pub fn with_retention(mut self, policy: RetentionPolicy) -> Self {
        self.retention = policy;
        self
    }

    /// Sets the storage backend — **the one place** a deployment picks
    /// its substrate; providers, metadata shards, and the version
    /// manager all follow it.
    pub fn with_backend(mut self, backend: BackendConfig) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = StoreConfig::default();
        assert_eq!(c.chunk_size, 64 * 1024);
        assert!(c.chunk_size.is_power_of_two());
        assert_eq!(c.data_providers, 16);
        assert_eq!(c.replication, 1);
        assert_eq!(c.ticket_mode, TicketMode::Pipelined);
        assert_eq!(c.transfer_mode, TransferMode::Pipelined);
        assert_eq!(c.meta_commit_mode, MetaCommitMode::Batched);
        assert_eq!(c.meta_read_mode, MetaReadMode::Batched);
        assert_eq!(c.transport_mode, TransportMode::Loopback);
        assert_eq!(c.meta_cache_nodes, 4096);
        assert_eq!(c.commit_mode, CommitMode::Direct);
        assert_eq!(c.wal_capacity, 64 * 1024 * 1024);
        assert_eq!(c.retention, RetentionPolicy::KeepAll);
        assert_eq!(c.backend, BackendConfig::Memory);
    }

    #[test]
    fn builder_methods_chain() {
        let c = StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(4)
            .with_meta_shards(2)
            .with_replication(3, 2)
            .with_allocation(AllocationStrategy::LeastLoaded)
            .with_ticket_mode(TicketMode::SerializedBuild)
            .with_transfer_mode(TransferMode::Serial)
            .with_meta_commit_mode(MetaCommitMode::Serial)
            .with_meta_read_mode(MetaReadMode::PerNode)
            .with_transport_mode(TransportMode::Tcp)
            .with_meta_cache(0)
            .with_commit_mode(CommitMode::Logged)
            .with_wal_capacity(1 << 20)
            .with_retention(RetentionPolicy::KeepLast(2))
            .with_backend(BackendConfig::disk("/tmp/x"))
            .with_seed(7);
        assert_eq!(c.cost, CostModel::zero());
        assert_eq!(c.chunk_size, 1024);
        assert_eq!(c.data_providers, 4);
        assert_eq!(c.meta_shards, 2);
        assert_eq!((c.replication, c.min_replicas), (3, 2));
        assert_eq!(c.allocation, AllocationStrategy::LeastLoaded);
        assert_eq!(c.ticket_mode, TicketMode::SerializedBuild);
        assert_eq!(c.transfer_mode, TransferMode::Serial);
        assert_eq!(c.meta_commit_mode, MetaCommitMode::Serial);
        assert_eq!(c.meta_read_mode, MetaReadMode::PerNode);
        assert_eq!(c.transport_mode, TransportMode::Tcp);
        assert_eq!(c.meta_cache_nodes, 0);
        assert_eq!(c.commit_mode, CommitMode::Logged);
        assert_eq!(c.wal_capacity, 1 << 20);
        assert_eq!(c.retention, RetentionPolicy::KeepLast(2));
        assert!(c.backend.is_disk());
        assert_eq!(c.seed, 7);
    }
}
