//! Hash-slot routing for namespace-scale distribution.
//!
//! Every blob hashes to one of [`SLOT_COUNT`] slots; a [`SlotMap`]
//! assigns contiguous slot ranges to numbered *groups* (version-service
//! shards or provider groups). The map is a tiny, epoch-versioned value
//! that ships over RPC, so clients and servers agree on who owns what:
//! a server that receives a request for a slot it does not own answers
//! `Error::WrongShard { epoch, slot }` with its current epoch, and the
//! client refetches the map and re-routes. This is the amberio/ Redis-
//! cluster shape — `hash(name) % slot_count` — chosen over consistent
//! hashing because slot ownership is explicit, enumerable, and cheap to
//! hand off one range at a time.
//!
//! Slots are deliberately decoupled from group count: a 4-shard
//! deployment owns 256 slots each, so growing to 8 shards moves slot
//! ranges without rehashing any blob.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Total number of hash slots. Every blob maps to exactly one slot.
pub const SLOT_COUNT: u16 = 1024;

/// Routes a path to its slot: `fnv1a(name) % SLOT_COUNT`.
pub fn slot_for_name(name: &str) -> u16 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % u64::from(SLOT_COUNT)) as u16
}

/// Routes a raw blob id to its slot.
///
/// Blob ids are allocated densely, so they pass through a splitmix64
/// finalizer first — otherwise blobs 0..N would fill slots 0..N in
/// order and a slot range would capture a contiguous run of creation
/// time instead of a uniform sample of the namespace.
pub fn slot_for_blob(blob: u64) -> u16 {
    let mut z = blob.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % u64::from(SLOT_COUNT)) as u16
}

/// A contiguous, inclusive slot interval owned by one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRange {
    /// First slot in the range (inclusive).
    pub start: u16,
    /// Last slot in the range (inclusive).
    pub end: u16,
    /// Owning group (shard index).
    pub group: usize,
}

/// The epoch-versioned assignment of slot ranges to groups.
///
/// Maps are totally ordered by `epoch`: whoever holds the higher epoch
/// is right. Membership changes bump the epoch and move ranges; slots
/// may also be *unassigned* (mid-handoff), in which case
/// [`SlotMap::group_of`] returns `None` and routed calls fail typed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotMap {
    /// Monotonic configuration version.
    pub epoch: u64,
    /// Number of groups the map routes to (shard count).
    pub groups: usize,
    /// Sorted, non-overlapping ranges. Gaps are unassigned slots.
    pub ranges: Vec<SlotRange>,
}

impl SlotMap {
    /// The trivial map: one group owning every slot, epoch 1.
    pub fn single() -> Self {
        SlotMap::uniform(1)
    }

    /// Splits the slot space evenly across `groups` shards (the first
    /// `SLOT_COUNT % groups` shards get one extra slot), epoch 1.
    pub fn uniform(groups: usize) -> Self {
        assert!(groups > 0, "a slot map needs at least one group");
        let total = usize::from(SLOT_COUNT);
        let base = total / groups;
        let extra = total % groups;
        let mut ranges = Vec::with_capacity(groups.min(total));
        let mut start = 0usize;
        for group in 0..groups.min(total) {
            let len = base + usize::from(group < extra);
            if len == 0 {
                break;
            }
            ranges.push(SlotRange {
                start: start as u16,
                end: (start + len - 1) as u16,
                group,
            });
            start += len;
        }
        SlotMap {
            epoch: 1,
            groups,
            ranges,
        }
    }

    /// The group owning `slot`, or `None` if the slot is unassigned.
    pub fn group_of(&self, slot: u16) -> Option<usize> {
        self.ranges
            .iter()
            .find(|r| r.start <= slot && slot <= r.end)
            .map(|r| r.group)
    }

    /// True if `group` owns `slot` under this map.
    pub fn owns(&self, group: usize, slot: u16) -> bool {
        self.group_of(slot) == Some(group)
    }

    /// All slots owned by `group`, ascending. Empty if the group owns
    /// no range (a valid state: a drained shard awaiting removal).
    pub fn slots_of(&self, group: usize) -> Vec<u16> {
        let mut out = Vec::new();
        for r in &self.ranges {
            if r.group == group {
                out.extend(r.start..=r.end);
            }
        }
        out
    }

    /// A new map with `slots` moved to group `to` and the epoch bumped.
    ///
    /// Used for online membership change: the coordinator freezes the
    /// moving slots on the old owner, drains and replays them on the new
    /// owner, then installs the reassigned map everywhere.
    pub fn reassign(&self, slots: &[u16], to: usize) -> SlotMap {
        let moving: BTreeSet<u16> = slots.iter().copied().collect();
        let mut owner: Vec<Option<usize>> = vec![None; usize::from(SLOT_COUNT)];
        for r in &self.ranges {
            for s in r.start..=r.end {
                owner[usize::from(s)] = Some(r.group);
            }
        }
        for s in &moving {
            owner[usize::from(*s)] = Some(to);
        }
        SlotMap {
            epoch: self.epoch + 1,
            groups: self.groups.max(to + 1),
            ranges: compress(&owner),
        }
    }

    /// A copy with the same assignment at the next epoch. Used when a
    /// handoff aborts: the coordinator reasserts the old ownership under
    /// a fresh epoch so frozen shards thaw.
    pub fn bump_epoch(&self) -> SlotMap {
        let mut next = self.clone();
        next.epoch += 1;
        next
    }
}

/// Compresses a per-slot ownership table back into sorted ranges.
fn compress(owner: &[Option<usize>]) -> Vec<SlotRange> {
    let mut ranges: Vec<SlotRange> = Vec::new();
    for (slot, who) in owner.iter().enumerate() {
        let Some(group) = *who else { continue };
        match ranges.last_mut() {
            Some(last) if last.group == group && usize::from(last.end) + 1 == slot => {
                last.end = slot as u16;
            }
            _ => ranges.push(SlotRange {
                start: slot as u16,
                end: slot as u16,
                group,
            }),
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize as _;

    #[test]
    fn name_hashing_is_stable_and_in_range() {
        let a = slot_for_name("/tenant0/ckpt/000001.dat");
        assert_eq!(a, slot_for_name("/tenant0/ckpt/000001.dat"));
        assert!(a < SLOT_COUNT);
        assert_ne!(a, slot_for_name("/tenant0/ckpt/000002.dat"));
    }

    #[test]
    fn blob_hashing_spreads_dense_ids() {
        // Dense ids 0..4096 should land in most slots, not a prefix.
        let mut hit = vec![false; usize::from(SLOT_COUNT)];
        for blob in 0u64..4096 {
            hit[usize::from(slot_for_blob(blob))] = true;
        }
        let covered = hit.iter().filter(|h| **h).count();
        assert!(covered > 900, "only {covered} of 1024 slots covered");
    }

    #[test]
    fn uniform_covers_every_slot_exactly_once() {
        for groups in [1, 2, 3, 4, 7, 16] {
            let map = SlotMap::uniform(groups);
            let mut counts = vec![0usize; groups];
            for slot in 0..SLOT_COUNT {
                let g = map.group_of(slot).expect("every slot assigned");
                counts[g] += 1;
            }
            let total: usize = counts.iter().sum();
            assert_eq!(total, usize::from(SLOT_COUNT));
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "uneven split for {groups} groups: {counts:?}"
            );
        }
    }

    #[test]
    fn reassign_moves_slots_and_bumps_epoch() {
        let map = SlotMap::uniform(4);
        let moving = map.slots_of(3);
        let next = map.reassign(&moving, 0);
        assert_eq!(next.epoch, map.epoch + 1);
        for s in &moving {
            assert_eq!(next.group_of(*s), Some(0));
        }
        // Group 3 now owns nothing — the empty-slot-range edge case.
        assert!(next.slots_of(3).is_empty());
        assert_eq!(next.group_of(0).map(|_| ()), Some(()));
        // Untouched slots keep their owner.
        for s in map.slots_of(1) {
            assert_eq!(next.group_of(s), Some(1));
        }
    }

    #[test]
    fn reassign_can_grow_the_group_count() {
        let map = SlotMap::uniform(2);
        let next = map.reassign(&[0, 1, 2], 5);
        assert_eq!(next.groups, 6);
        assert_eq!(next.group_of(1), Some(5));
    }

    #[test]
    fn ranges_compress_adjacent_slots() {
        let map = SlotMap::uniform(4);
        assert_eq!(map.ranges.len(), 4, "uniform map is 4 contiguous ranges");
        // Moving one interior slot splits its source range.
        let next = map.reassign(&[10], 1);
        assert_eq!(next.group_of(9), Some(0));
        assert_eq!(next.group_of(10), Some(1));
        assert_eq!(next.group_of(11), Some(0));
    }

    #[test]
    fn roundtrips_through_serde() {
        let map = SlotMap::uniform(4).reassign(&[7, 8, 512], 2);
        let back = SlotMap::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn bump_epoch_keeps_assignment() {
        let map = SlotMap::uniform(3);
        let next = map.bump_epoch();
        assert_eq!(next.epoch, 2);
        assert_eq!(next.ranges, map.ranges);
    }
}
