//! The assembled versioning store.

use crate::blob::Blob;
use crate::config::StoreConfig;
use crate::namespace::Namespace;
use atomio_meta::{MetaStore, NodeStore, TreeConfig, VersionHistory};
use atomio_provider::ProviderManager;
use atomio_simgrid::{CostModel, FaultInjector, Metrics};
use atomio_types::ids::IdAllocator;
use atomio_types::{BlobId, ChunkGeometry};
use atomio_version::{VersionManager, VersionOracle};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds the version oracle for each new blob: the seam through which
/// the version manager becomes a third independently deployable service
/// (see [`Store::with_version_oracles`]).
pub type VersionOracleFactory = Arc<dyn Fn(BlobId) -> Arc<dyn VersionOracle> + Send + Sync>;

/// One deployment of the versioning storage service.
///
/// Shared infrastructure (providers, metadata shards, fault plane) is
/// store-wide; each blob gets its own version oracle and write history.
pub struct Store {
    config: StoreConfig,
    providers: Arc<ProviderManager>,
    meta: Arc<dyn NodeStore>,
    faults: Arc<FaultInjector>,
    metrics: Metrics,
    chunk_ids: Arc<IdAllocator>,
    blob_ids: IdAllocator,
    blobs: RwLock<HashMap<BlobId, Blob>>,
    namespace: Namespace,
    oracles: VersionOracleFactory,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("config", &self.config)
            .field("providers", &self.providers)
            .field("meta", &self.meta)
            .field("blobs", &self.blobs.read().len())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Deploys a store.
    ///
    /// # Panics
    /// Panics when `config.transport_mode` is
    /// [`crate::config::TransportMode::Tcp`]: this constructor has no
    /// server addresses to dial. Assemble the remote substrates with
    /// `atomio-rpc` and hand them to [`Self::with_substrates`] instead.
    pub fn new(config: StoreConfig) -> Self {
        assert_eq!(
            config.transport_mode,
            crate::config::TransportMode::Loopback,
            "Store::new only assembles the in-process Loopback transport; \
             for Tcp build remote handles with atomio-rpc and call \
             Store::with_substrates"
        );
        let costs = vec![config.cost; config.data_providers];
        Self::new_heterogeneous(config, costs)
    }

    /// Deploys a store with per-provider hardware (`costs[i]` for data
    /// provider `i`; overrides `config.data_providers`). Metadata shards
    /// and the version manager keep `config.cost`.
    ///
    /// # Panics
    /// With a [`BackendConfig::Disk`](atomio_types::BackendConfig)
    /// backend, panics when a backend directory cannot be opened or
    /// recovered — a deployment that cannot reach its durable state must
    /// not come up empty and silently shed data.
    pub fn new_heterogeneous(config: StoreConfig, costs: Vec<CostModel>) -> Self {
        let faults = Arc::new(FaultInjector::new(config.seed ^ 0xFA17));
        let providers = Arc::new(
            ProviderManager::with_backend(
                &config.backend,
                costs,
                config.allocation,
                Arc::clone(&faults),
                config.seed,
            )
            .expect("open storage backend"),
        );
        // Metadata and data traffic of one client contend for the same
        // simulated NIC: the meta store books on the provider registry.
        let meta: Arc<dyn NodeStore> = match &config.backend {
            atomio_types::BackendConfig::Memory => Arc::new(MetaStore::with_client_nics(
                config.meta_shards,
                config.cost,
                Arc::clone(providers.client_nic_registry()),
            )),
            atomio_types::BackendConfig::Disk { dir, fsync } => Arc::new(
                atomio_meta::DiskNodeStore::open_with_client_nics(
                    dir.join("meta"),
                    config.meta_shards,
                    config.cost,
                    Arc::clone(providers.client_nic_registry()),
                    *fsync,
                )
                .expect("open metadata backend"),
            ),
        };
        Self::with_substrates(config, providers, meta)
    }

    /// Assembles a store over caller-built substrates — the seam the
    /// `atomio-rpc` transports plug into: pass a [`ProviderManager`]
    /// built from `RemoteProvider` handles and a `RemoteMetaStore`, and
    /// the whole write/read/scrub machinery runs over real sockets. The
    /// in-process constructors funnel through here too, so both
    /// deployments execute the same code path above this line.
    pub fn with_substrates(
        config: StoreConfig,
        providers: Arc<ProviderManager>,
        meta: Arc<dyn NodeStore>,
    ) -> Self {
        let faults = Arc::clone(providers.faults());
        // Default oracle factory: one in-process version manager per
        // blob, exactly the pre-RPC behavior — durable when the backend
        // is, so publish decisions survive crashes with the data. A
        // remote deployment swaps this out with `with_version_oracles`.
        let (chunk_size, cost, ticket_mode) = (config.chunk_size, config.cost, config.ticket_mode);
        let backend = config.backend.clone();
        let retention = config.retention;
        let oracles: VersionOracleFactory = Arc::new(move |blob| {
            let vm = match &backend {
                atomio_types::BackendConfig::Memory => Arc::new(VersionManager::new(
                    Arc::new(VersionHistory::new()),
                    TreeConfig::new(chunk_size),
                    cost,
                    ticket_mode,
                )),
                atomio_types::BackendConfig::Disk { dir, fsync } => Arc::new(
                    VersionManager::durable(
                        dir.join("version").join(format!("blob-{}", blob.raw())),
                        Arc::new(VersionHistory::new()),
                        TreeConfig::new(chunk_size),
                        cost,
                        ticket_mode,
                        *fsync,
                    )
                    .expect("open publish log"),
                ),
            };
            // Stamp the deployment's default retention policy, but never
            // clobber a per-blob policy recovered from the publish log —
            // the same precedence the version server applies for its
            // `--retention` flag.
            if retention != atomio_types::RetentionPolicy::default()
                && vm.retention() == atomio_types::RetentionPolicy::default()
            {
                vm.set_retention_local(retention)
                    .expect("record default retention policy");
            }
            vm as Arc<dyn VersionOracle>
        });
        // A reopened disk deployment resumes its chunk allocator past
        // every id already on any provider's media — chunk ids, like
        // version numbers, are never reused across restarts. (Blob ids
        // are allocated deterministically in creation order, so a client
        // that re-creates its blobs in the same order after a restart
        // re-binds the recovered state.)
        let first_free = providers
            .providers()
            .iter()
            .filter_map(|s| s.max_chunk_id())
            .map(|c| c.raw() + 1)
            .max()
            .unwrap_or(0);
        Store {
            providers,
            meta,
            faults,
            metrics: Metrics::new(),
            chunk_ids: Arc::new(IdAllocator::starting_at(first_free)),
            blob_ids: IdAllocator::new(),
            blobs: RwLock::new(HashMap::new()),
            namespace: Namespace::new(),
            config,
            oracles,
        }
    }

    /// Replaces the per-blob version-oracle factory — the third leg of
    /// the RPC seam. Pass a closure returning
    /// `atomio_rpc::RemoteVersionManager` handles dialed at an
    /// `atomio-version-server` and every blob created afterwards runs
    /// its ticket/publish/snapshot traffic over that transport; the
    /// data and metadata paths are untouched.
    pub fn with_version_oracles(
        mut self,
        factory: impl Fn(BlobId) -> Arc<dyn VersionOracle> + Send + Sync + 'static,
    ) -> Self {
        self.oracles = Arc::new(factory);
        self
    }

    /// Creates a new blob (one shared file) and returns its handle.
    pub fn create_blob(&self) -> Blob {
        let id = self.blob_ids.next_blob();
        let vm = (self.oracles)(id);
        let blob = Blob::assemble(
            id,
            ChunkGeometry::new(self.config.chunk_size),
            Arc::clone(&self.providers),
            Arc::clone(&self.meta),
            vm,
            Arc::clone(&self.chunk_ids),
            self.config.clone(),
            self.metrics.clone(),
        );
        self.blobs.write().insert(id, blob.clone());
        blob
    }

    /// Looks up an existing blob handle.
    pub fn blob(&self, id: BlobId) -> Option<Blob> {
        self.blobs.read().get(&id).cloned()
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The provider fleet (for accounting and ablations).
    pub fn providers(&self) -> &Arc<ProviderManager> {
        &self.providers
    }

    /// The metadata store.
    pub fn meta(&self) -> &Arc<dyn NodeStore> {
        &self.meta
    }

    /// The fault-injection plane.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// The store-wide metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The path namespace (see [`crate::namespace`]).
    pub(crate) fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Scrubs every data provider and repairs corrupted chunks from
    /// healthy replicas, using the metadata trees of every published
    /// snapshot to map chunks to their replica homes. Returns
    /// `(corruptions_found, repaired)`.
    pub fn scrub_and_repair(
        &self,
        p: &atomio_simgrid::Participant,
    ) -> atomio_types::Result<(u64, u64)> {
        use atomio_meta::TreeReader;
        use atomio_types::{ChunkId, ProviderId, VersionId};
        use std::collections::HashMap;

        // Gather chunk→homes from every published version of every blob.
        let mut homes: HashMap<ChunkId, Vec<ProviderId>> = HashMap::new();
        let reader = TreeReader::new(self.meta.as_ref());
        let blobs: Vec<Blob> = self.blobs.read().values().cloned().collect();
        for blob in &blobs {
            let latest = blob.version_manager().latest(p)?.version;
            let mut v = VersionId::new(1);
            while v <= latest {
                if let Ok(snap) = blob.version_manager().snapshot(p, v) {
                    for (chunk, h) in reader.referenced_chunks(p, snap.root)? {
                        homes.entry(chunk).or_insert(h);
                    }
                }
                v = v.successor();
            }
        }
        Ok(self
            .providers
            .scrub_and_repair(p, |c| homes.get(&c).cloned().unwrap_or_default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_blobs() {
        let store = Store::new(StoreConfig::default().with_zero_cost());
        let a = store.create_blob();
        let b = store.create_blob();
        assert_ne!(a.id(), b.id());
        assert_eq!(store.blob(a.id()).unwrap().id(), a.id());
        assert!(store.blob(BlobId::new(999)).is_none());
    }

    #[test]
    fn blobs_share_infrastructure_without_key_collisions() {
        // Regression: tree node keys include the blob id, so two blobs
        // writing the same version number over the same ranges must not
        // collide in the shared metadata store.
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(2),
        );
        let a = store.create_blob();
        let b = store.create_blob();
        atomio_simgrid::clock::run_actors(1, |_, p| {
            let va = a.write(p, 0, bytes::Bytes::from_static(b"AAAA")).unwrap();
            let vb = b.write(p, 0, bytes::Bytes::from_static(b"BBBB")).unwrap();
            assert_eq!(va, vb, "both blobs are at their own version 1");
            assert_eq!(a.read(p, 0, 4).unwrap(), b"AAAA");
            assert_eq!(b.read(p, 0, 4).unwrap(), b"BBBB");
        });
    }

    #[test]
    fn store_exposes_substrates() {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_data_providers(3)
                .with_meta_shards(2),
        );
        assert_eq!(store.providers().provider_count(), 3);
        assert_eq!(store.meta().node_count(), 0);
        assert_eq!(store.config().data_providers, 3);
        assert_eq!(store.faults().failed_count(), 0);
    }
}
