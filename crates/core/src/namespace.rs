//! A flat, slash-separated namespace mapping paths to blobs.
//!
//! BlobSeer itself is a blob store; file-system deployments put a thin
//! namespace in front of it (as BlobSeer's HDFS/file-system bindings
//! do). This module provides that layer so MPI applications can open
//! shared files by path: `create` / `open` / `rename` / `unlink` /
//! `list`.
//!
//! Unlinking removes the name only — snapshots stay readable through
//! live handles and reclaimable via [`crate::gc`], consistent with POSIX
//! unlink semantics.

use crate::blob::Blob;
use crate::routing::slot_for_name;
use crate::store::Store;
use atomio_types::{Error, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Number of independently-locked directory buckets. Paths route to a
/// bucket by hash slot ([`slot_for_name`]), so a million-file namespace
/// under concurrent create/open from many tenants contends on 1/16th of
/// a lock instead of one global one.
const NAMESPACE_BUCKETS: usize = 16;

/// Path → blob directory. One per store; thread-safe.
///
/// Internally slot-sharded: each path lives in the bucket of its hash
/// slot. Single-path operations lock one bucket; `rename` locks the two
/// buckets involved in index order; `list` snapshots all buckets and
/// merges.
#[derive(Debug)]
pub struct Namespace {
    buckets: Vec<RwLock<BTreeMap<String, Blob>>>,
}

impl Default for Namespace {
    fn default() -> Self {
        Namespace {
            buckets: (0..NAMESPACE_BUCKETS).map(|_| RwLock::default()).collect(),
        }
    }
}

/// Normalizes a path: requires a leading `/`, collapses repeated
/// slashes, rejects empty and trailing-slash paths.
fn normalize(path: &str) -> Result<String> {
    if !path.starts_with('/') {
        return Err(Error::Internal(format!(
            "namespace paths are absolute, got {path:?}"
        )));
    }
    let mut out = String::with_capacity(path.len());
    for segment in path.split('/') {
        if segment.is_empty() {
            continue;
        }
        out.push('/');
        out.push_str(segment);
    }
    if out.is_empty() {
        return Err(Error::Internal("the root is not a file".into()));
    }
    Ok(out)
}

impl Namespace {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn bucket_index(&self, path: &str) -> usize {
        usize::from(slot_for_name(path)) % self.buckets.len()
    }

    fn bucket(&self, path: &str) -> &RwLock<BTreeMap<String, Blob>> {
        &self.buckets[self.bucket_index(path)]
    }

    fn insert(&self, path: String, blob: Blob) -> Result<Blob> {
        let mut entries = self.bucket(&path).write();
        if entries.contains_key(&path) {
            return Err(Error::Internal(format!("{path} already exists")));
        }
        entries.insert(path, blob.clone());
        Ok(blob)
    }

    fn get(&self, path: &str) -> Option<Blob> {
        self.bucket(path).read().get(path).cloned()
    }
}

impl Store {
    /// Creates a new named file; fails if the path exists.
    pub fn create_file(&self, path: &str) -> Result<Blob> {
        let path = normalize(path)?;
        self.namespace().insert(path, self.create_blob())
    }

    /// Opens an existing named file.
    pub fn open_file(&self, path: &str) -> Result<Blob> {
        let path = normalize(path)?;
        self.namespace()
            .get(&path)
            .ok_or_else(|| Error::Internal(format!("{path} does not exist")))
    }

    /// Opens the file, creating it first if absent (MPI_MODE_CREATE).
    pub fn open_or_create_file(&self, path: &str) -> Result<Blob> {
        let path = normalize(path)?;
        if let Some(blob) = self.namespace().get(&path) {
            return Ok(blob);
        }
        self.namespace().insert(path, self.create_blob())
    }

    /// Removes a name. Live handles keep working; data is reclaimed by
    /// GC, not by unlink.
    pub fn unlink(&self, path: &str) -> Result<()> {
        let path = normalize(path)?;
        match self.namespace().bucket(&path).write().remove(&path) {
            Some(_) => Ok(()),
            None => Err(Error::Internal(format!("{path} does not exist"))),
        }
    }

    /// Renames a file; fails if the source is missing or the target
    /// exists.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let from = normalize(from)?;
        let to = normalize(to)?;
        let ns = self.namespace();
        let (fi, ti) = (ns.bucket_index(&from), ns.bucket_index(&to));
        if fi == ti {
            let mut entries = ns.buckets[fi].write();
            if entries.contains_key(&to) {
                return Err(Error::Internal(format!("{to} already exists")));
            }
            return match entries.remove(&from) {
                Some(blob) => {
                    entries.insert(to, blob);
                    Ok(())
                }
                None => Err(Error::Internal(format!("{from} does not exist"))),
            };
        }
        // Distinct buckets: lock in index order so concurrent renames in
        // opposite directions cannot deadlock.
        let (mut from_entries, mut to_entries) = if fi < ti {
            let a = ns.buckets[fi].write();
            let b = ns.buckets[ti].write();
            (a, b)
        } else {
            let b = ns.buckets[ti].write();
            let a = ns.buckets[fi].write();
            (a, b)
        };
        if to_entries.contains_key(&to) {
            return Err(Error::Internal(format!("{to} already exists")));
        }
        match from_entries.remove(&from) {
            Some(blob) => {
                to_entries.insert(to, blob);
                Ok(())
            }
            None => Err(Error::Internal(format!("{from} does not exist"))),
        }
    }

    /// Lists paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let ns = self.namespace();
        let prefix = normalize(prefix).ok(); // "/" lists everything
        let mut out: Vec<String> = Vec::new();
        for bucket in &ns.buckets {
            let entries = bucket.read();
            match &prefix {
                None => out.extend(entries.keys().cloned()),
                Some(p) => out.extend(
                    entries
                        .range(p.clone()..)
                        .take_while(|(k, _)| k.starts_with(p))
                        .map(|(k, _)| k.clone()),
                ),
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use bytes::Bytes;

    fn store() -> Store {
        Store::new(StoreConfig::default().with_zero_cost().with_chunk_size(64))
    }

    #[test]
    fn create_open_roundtrip() {
        let s = store();
        let created = s.create_file("/runs/exp1/output.dat").unwrap();
        let opened = s.open_file("/runs/exp1/output.dat").unwrap();
        assert_eq!(created.id(), opened.id());
        // Paths normalize: repeated slashes collapse.
        let opened2 = s.open_file("//runs//exp1/output.dat").unwrap();
        assert_eq!(created.id(), opened2.id());
    }

    #[test]
    fn duplicate_create_fails_open_or_create_does_not() {
        let s = store();
        s.create_file("/f").unwrap();
        assert!(s.create_file("/f").is_err());
        let a = s.open_or_create_file("/f").unwrap();
        let b = s.open_or_create_file("/g").unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn invalid_paths_rejected() {
        let s = store();
        assert!(s.create_file("relative/path").is_err());
        assert!(s.create_file("/").is_err());
        assert!(s.open_file("/missing").is_err());
    }

    #[test]
    fn unlink_keeps_live_handles_working() {
        let s = store();
        let blob = s.create_file("/data").unwrap();
        run_actors(1, |_, p| {
            blob.write(p, 0, Bytes::from_static(b"still here")).unwrap();
        });
        s.unlink("/data").unwrap();
        assert!(s.open_file("/data").is_err());
        assert!(s.unlink("/data").is_err(), "double unlink");
        run_actors(1, |_, p| {
            assert_eq!(blob.read(p, 0, 10).unwrap(), b"still here");
        });
        // The name is free for reuse, backed by a fresh blob.
        let fresh = s.create_file("/data").unwrap();
        assert_ne!(fresh.id(), blob.id());
    }

    #[test]
    fn rename_moves_the_binding() {
        let s = store();
        let blob = s.create_file("/old").unwrap();
        s.create_file("/taken").unwrap();
        assert!(s.rename("/old", "/taken").is_err());
        s.rename("/old", "/new").unwrap();
        assert!(s.open_file("/old").is_err());
        assert_eq!(s.open_file("/new").unwrap().id(), blob.id());
        assert!(s.rename("/missing", "/x").is_err());
    }

    #[test]
    fn list_by_prefix() {
        let s = store();
        for path in ["/a/1", "/a/2", "/b/1", "/a/sub/3"] {
            s.create_file(path).unwrap();
        }
        assert_eq!(s.list("/a"), vec!["/a/1", "/a/2", "/a/sub/3"]);
        assert_eq!(s.list("/b"), vec!["/b/1"]);
        assert_eq!(s.list("/").len(), 4);
        assert!(s.list("/zzz").is_empty());
    }
}
