#!/usr/bin/env bash
# Full verification gate, run offline:
#   1. tier-1: release build + the root test suite
#   2. formatting
#   3. lints (warnings are errors, workspace-wide)
#
# Usage: scripts/verify.sh
#   VERIFY_TCP=1 scripts/verify.sh   # also build the three RPC server
#                                    # binaries (provider/meta/version)
#                                    # and run the localhost-TCP
#                                    # transport-equivalence,
#                                    # three-service distributed
#                                    # atomicity, and WAL drain
#                                    # equivalence suites
#   VERIFY_DISK=1 scripts/verify.sh  # also run the crash-durability
#                                    # suite and rerun the equivalence
#                                    # suites with every hosted service
#                                    # on the disk backend (ATOMIO_DISK=1)
#   VERIFY_REACTOR=1 scripts/verify.sh # also rerun the localhost-TCP
#                                    # suites and the rpc unit suite
#                                    # with every server on the epoll
#                                    # reactor front-end
#                                    # (ATOMIO_REACTOR=1)
#   VERIFY_SHARDS=1 scripts/verify.sh # also run the namespace
#                                    # distribution suite and rerun the
#                                    # three-service suite against a
#                                    # 4-shard slot-routed version fleet
#                                    # (ATOMIO_SHARDS=4)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings

if [[ "${VERIFY_TCP:-0}" == "1" ]]; then
    echo "== transport-tcp: build server binaries (provider + meta + version) =="
    cargo build --release --offline -p atomio-rpc --bins

    echo "== transport-tcp: loopback/TCP equivalence + mux stress/fault (localhost sockets) =="
    cargo test -q --offline --test transport_equivalence

    # Every server in these suites binds 127.0.0.1:0, so each test gets
    # its own kernel-allocated port and the default parallel test
    # threads cannot race on port allocation. If you pin fixed ports
    # (e.g. while debugging against running server binaries), serialize
    # with `-- --test-threads=1`.
    echo "== transport-tcp: three-service distributed atomicity (localhost sockets) =="
    cargo test -q --offline --test distributed_atomicity

    echo "== transport-tcp: WAL drain equivalence incl. mid-drain server kill (localhost sockets) =="
    cargo test -q --offline --test wal_equivalence

    echo "== transport-tcp: lease-based GC beside live writers (localhost sockets) =="
    cargo test -q --offline --test gc_distributed

    echo "== transport-tcp: rpc unit suite under thread contention =="
    cargo test -q --offline -p atomio-rpc -- --test-threads=16
fi

if [[ "${VERIFY_REACTOR:-0}" == "1" ]]; then
    # ATOMIO_REACTOR=1 flips every RpcServer in the suites onto the
    # event-driven reactor front-end (one epoll thread multiplexing all
    # connections) in place of thread-per-connection, proving the
    # front-end swap changes no bytes, versions, or metadata.
    echo "== reactor: transport equivalence on the epoll front-end (ATOMIO_REACTOR=1) =="
    ATOMIO_REACTOR=1 cargo test -q --offline --test transport_equivalence

    echo "== reactor: three-service distributed atomicity on the epoll front-end (ATOMIO_REACTOR=1) =="
    ATOMIO_REACTOR=1 cargo test -q --offline --test distributed_atomicity

    echo "== reactor: WAL drain equivalence on the epoll front-end (ATOMIO_REACTOR=1) =="
    ATOMIO_REACTOR=1 cargo test -q --offline --test wal_equivalence

    echo "== reactor: rpc unit suite on the epoll front-end (ATOMIO_REACTOR=1) =="
    ATOMIO_REACTOR=1 cargo test -q --offline -p atomio-rpc -- --test-threads=16
fi

if [[ "${VERIFY_DISK:-0}" == "1" ]]; then
    echo "== disk: crash-durability suite (hard-drop reopen, torn tails, grant rollback) =="
    cargo test -q --offline --test durability

    # The equivalence suites take ATOMIO_DISK=1 as a backend switch:
    # every hosted service (providers, meta shards, version manager)
    # runs on the durable disk backend in a fresh temp dir, proving the
    # substrate swap changes no bytes, versions, or metadata — incl.
    # the kill→restart→recover distributed-atomicity arm.
    echo "== disk: distributed atomicity on the disk backend (ATOMIO_DISK=1) =="
    ATOMIO_DISK=1 cargo test -q --offline --test distributed_atomicity

    echo "== disk: transport equivalence on the disk backend (ATOMIO_DISK=1) =="
    ATOMIO_DISK=1 cargo test -q --offline --test transport_equivalence

    echo "== disk: WAL drain equivalence on the disk backend (ATOMIO_DISK=1) =="
    ATOMIO_DISK=1 cargo test -q --offline --test wal_equivalence

    echo "== disk: lease-based GC incl. lease/retention crash recovery (ATOMIO_DISK=1) =="
    ATOMIO_DISK=1 cargo test -q --offline --test gc_distributed
fi

if [[ "${VERIFY_SHARDS:-0}" == "1" ]]; then
    # The namespace suite pins 1-shard vs 4-shard bit-identity, shard
    # kill/recovery blast radius, and online slot handoff; ATOMIO_SHARDS=4
    # then reruns the three-service suite with the version manager split
    # across a 4-shard slot-routed fleet, proving the routing layer
    # changes no bytes, versions, or metadata.
    echo "== shards: namespace distribution suite (slot routing, handoff, shard kill) =="
    cargo test -q --offline --test namespace_distributed

    echo "== shards: three-service distributed atomicity on a 4-shard version fleet (ATOMIO_SHARDS=4) =="
    ATOMIO_SHARDS=4 cargo test -q --offline --test distributed_atomicity

    echo "== shards: three-service distributed atomicity on a 4-shard fleet with disk-backed version services (ATOMIO_SHARDS=4 ATOMIO_DISK=1) =="
    ATOMIO_SHARDS=4 ATOMIO_DISK=1 cargo test -q --offline --test distributed_atomicity
fi

echo "verify: all gates passed"
