#!/usr/bin/env bash
# Full verification gate, run offline:
#   1. tier-1: release build + the root test suite
#   2. formatting
#   3. lints (warnings are errors, workspace-wide)
#
# Usage: scripts/verify.sh
#   VERIFY_TCP=1 scripts/verify.sh   # also build the three RPC server
#                                    # binaries (provider/meta/version)
#                                    # and run the localhost-TCP
#                                    # transport-equivalence,
#                                    # three-service distributed
#                                    # atomicity, and WAL drain
#                                    # equivalence suites
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings

if [[ "${VERIFY_TCP:-0}" == "1" ]]; then
    echo "== transport-tcp: build server binaries (provider + meta + version) =="
    cargo build --release --offline -p atomio-rpc --bins

    echo "== transport-tcp: loopback/TCP equivalence + mux stress/fault (localhost sockets) =="
    cargo test -q --offline --test transport_equivalence

    # Every server in these suites binds 127.0.0.1:0, so each test gets
    # its own kernel-allocated port and the default parallel test
    # threads cannot race on port allocation. If you pin fixed ports
    # (e.g. while debugging against running server binaries), serialize
    # with `-- --test-threads=1`.
    echo "== transport-tcp: three-service distributed atomicity (localhost sockets) =="
    cargo test -q --offline --test distributed_atomicity

    echo "== transport-tcp: WAL drain equivalence incl. mid-drain server kill (localhost sockets) =="
    cargo test -q --offline --test wal_equivalence

    echo "== transport-tcp: rpc unit suite under thread contention =="
    cargo test -q --offline -p atomio-rpc -- --test-threads=16
fi

echo "verify: all gates passed"
