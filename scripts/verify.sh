#!/usr/bin/env bash
# Full verification gate, run offline:
#   1. tier-1: release build + the root test suite
#   2. formatting
#   3. lints (warnings are errors, workspace-wide)
#
# Usage: scripts/verify.sh
#   VERIFY_TCP=1 scripts/verify.sh   # also build the RPC server binaries
#                                    # and run the localhost-TCP
#                                    # transport-equivalence suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --offline -- -D warnings

if [[ "${VERIFY_TCP:-0}" == "1" ]]; then
    echo "== transport-tcp: build server binaries =="
    cargo build --release --offline -p atomio-rpc --bins

    echo "== transport-tcp: loopback/TCP equivalence + mux stress/fault (localhost sockets) =="
    cargo test -q --offline --test transport_equivalence

    echo "== transport-tcp: rpc unit suite under thread contention =="
    cargo test -q --offline -p atomio-rpc -- --test-threads=16
fi

echo "verify: all gates passed"
