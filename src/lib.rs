//! # atomio — a storage backend optimized for atomic MPI-I/O
//!
//! Facade crate re-exporting the `atomio` workspace: a reproduction of
//! Tran, *"Towards a storage backend optimized for atomic MPI-I/O for
//! parallel scientific applications"* (IPDPS Workshops / PhD Forum, 2011).
//!
//! See the individual crates for the subsystems:
//!
//! * [`types`] — ids, byte-range / extent algebra, writer stamps.
//! * [`simgrid`] — simulated cluster substrate (cost models, disks, faults).
//! * [`provider`] — data providers and the provider manager (striping).
//! * [`meta`] — copy-on-write segment-tree metadata (shadowing).
//! * [`version`] — version manager (tickets, ordered publication).
//! * [`core`] — the versioning blob store client (the paper's contribution).
//! * [`rpc`] — wire protocol, transports, and server/client proxies.
//! * [`pfs`] — the locking-based baseline parallel file system.
//! * [`mpiio`] — MPI-I/O layer (datatypes, views, atomic mode, ADIO drivers).
//! * [`workloads`] — workload generators and the atomicity verifier.

pub use atomio_core as core;
pub use atomio_meta as meta;
pub use atomio_mpiio as mpiio;
pub use atomio_pfs as pfs;
pub use atomio_provider as provider;
pub use atomio_rpc as rpc;
pub use atomio_simgrid as simgrid;
pub use atomio_types as types;
pub use atomio_version as version;
pub use atomio_workloads as workloads;
