//! Quickstart: deploy a versioning store, perform an atomic
//! non-contiguous write, and read data back — both latest and historic.
//!
//! Run: `cargo run --release --example quickstart`

use atomio::core::{ReadVersion, Store, StoreConfig};
use atomio::simgrid::clock::run_actors;
use atomio::types::ExtentList;
use bytes::Bytes;

fn main() {
    // A small deployment: 4 data providers, 64 KiB chunks, simulated
    // Grid'5000-like hardware. Every service (providers, metadata
    // shards, version manager) runs in-process on a virtual clock.
    let store = Store::new(
        StoreConfig::default()
            .with_data_providers(4)
            .with_chunk_size(64 * 1024),
    );
    let blob = store.create_blob();

    let (_, elapsed) = run_actors(1, |_, p| {
        // The paper's API extension: a *vectored atomic write*. These
        // three regions — non-contiguous in the file — commit as ONE
        // snapshot. Payload bytes are packed in file order.
        let extents = ExtentList::from_pairs([(0u64, 6u64), (100, 6), (200, 6)]);
        let v1 = blob
            .write_list(p, &extents, Bytes::from_static(b"hello brave world!"))
            .expect("atomic vectored write");
        println!("wrote 3 regions atomically as snapshot {v1}");

        // Overwrite the middle region; that is a second snapshot.
        let v2 = blob
            .write(p, 100, Bytes::from_static(b"magic "))
            .expect("contiguous write");
        println!("overwrote [100, 106) as snapshot {v2}");

        // Latest state stitches regions, holes (zeros), and overwrites.
        let latest = blob
            .read_list(p, ReadVersion::Latest, &extents)
            .expect("read latest");
        println!("latest   = {:?}", String::from_utf8_lossy(&latest));
        assert_eq!(&latest, b"hello magic world!");

        // Versioning means v1 is still there, bit-exact.
        let old = blob.read_at(p, v1, &extents).expect("read v1");
        println!("at {v1}    = {:?}", String::from_utf8_lossy(&old));
        assert_eq!(&old, b"hello brave world!");

        // Unwritten bytes read as zeros.
        let hole = blob.read(p, 50, 4).expect("read hole");
        assert_eq!(hole, vec![0u8; 4]);
        println!("holes read as zeros: {hole:?}");
    });

    println!("simulated time consumed: {elapsed:?}");
}
