//! The paper's motivating scenario, end to end: a 2-D spatial domain is
//! partitioned into **overlapping tiles** (ghost cells shared between
//! neighbouring MPI processes). Every process dumps its tile to a
//! globally shared file through the full MPI-I/O path — subarray file
//! views, collective writes, **atomic mode** — on the versioning
//! backend. The run is then checked by the serializability verifier.
//!
//! Run: `cargo run --release --example ghost_cells`

use atomio::mpiio::drivers::VersioningDriver;
use atomio::mpiio::{adio::AdioDriver, Communicator, File, OpenMode};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList};
use atomio::workloads::verify::{check_serializable, WriteRecord};
use atomio::workloads::TileWorkload;
use atomio_bench::BenchConfig;
use std::sync::Arc;

fn main() {
    // A 3x3 process grid; each process owns a 64x64-element tile of
    // 8-byte cells, overlapping neighbours by 4 ghost cells.
    let domain = TileWorkload::new(3, 3, 64, 64, 8, 4, 4);
    let ranks = domain.processes();
    println!(
        "domain: {}x{} elements, {} processes, tile {}x{} (+{} ghost cells)",
        domain.array_x(),
        domain.array_y(),
        ranks,
        domain.sz_tile_x,
        domain.sz_tile_y,
        domain.overlap_x,
    );

    let cfg = BenchConfig::default();
    let store = atomio::core::Store::new(
        atomio::core::StoreConfig::default()
            .with_cost(cfg.cost)
            .with_chunk_size(cfg.chunk_size)
            .with_data_providers(cfg.servers),
    );
    let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));

    let clock = SimClock::new();
    let comm = Communicator::new(ranks, cfg.cost);
    let files: Vec<File> = (0..ranks)
        .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
        .collect();
    let stamps: Vec<WriteStamp> = (0..ranks)
        .map(|r| WriteStamp::new(ClientId::new(r as u64), 0))
        .collect();
    let extents: Vec<ExtentList> = (0..ranks).map(|r| domain.extents_for(r)).collect();

    // === The simulation dump: all ranks write their tiles at once. ===
    let start = clock.now();
    run_actors_on(&clock, ranks, |rank, p| {
        let f = &files[rank];
        f.set_view(domain.view(rank).expect("valid subarray view"));
        f.set_atomic(true); // MPI_File_set_atomicity(fh, 1)
        let tile_bytes = stamps[rank].payload_for(&extents[rank]);
        f.write_at_all(p, 0, &tile_bytes).expect("collective write");
    });
    let elapsed = clock.now() - start;
    let total = domain.bytes_per_process() * ranks as u64;
    println!(
        "dumped {:.1} MiB in {elapsed:?} of simulated time ({:.1} MiB/s aggregated)",
        total as f64 / (1024.0 * 1024.0),
        total as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64()
    );

    // === Check MPI atomicity: the file must be a serial replay. ===
    let state = run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(u64::MAX),
                &ExtentList::single(ByteRange::new(0, domain.dataset_bytes())),
                false,
            )
            .expect("read the whole domain back")
    })
    .pop()
    .unwrap();
    let records: Vec<WriteRecord> = (0..ranks)
        .map(|r| WriteRecord::new(stamps[r], extents[r].clone()))
        .collect();
    match check_serializable(&state, &records) {
        Ok(order) => {
            println!("MPI atomicity holds; a witness serial order of the 9 tile dumps:");
            println!(
                "  {:?}",
                order
                    .iter()
                    .map(|&i| format!("rank{i}"))
                    .collect::<Vec<_>>()
            );
        }
        Err(v) => panic!("atomicity violated: {v:?}"),
    }

    // Every tile interior (beyond the ghost border) belongs to its owner.
    let elem = domain.sz_element;
    let row = domain.array_x();
    for (rank, stamp) in stamps.iter().enumerate() {
        let (tx, ty) = domain.tile_of(rank);
        let x = tx * (domain.sz_tile_x - domain.overlap_x) + domain.overlap_x;
        let y = ty * (domain.sz_tile_y - domain.overlap_y) + domain.overlap_y;
        let off = (y * row + x) * elem;
        assert!(
            stamp.matches(off, &state[off as usize..(off + elem) as usize]),
            "rank {rank} interior clobbered"
        );
    }
    println!("all tile interiors intact; ghost borders consistently owned");
}
