//! A compact head-to-head: the same overlapping non-contiguous atomic
//! workload on every backend, with throughput and atomicity verdicts —
//! a one-screen version of the paper's evaluation.
//!
//! Run: `cargo run --release --example backend_shootout`

use atomio::simgrid::SimClock;
use atomio::types::ExtentList;
use atomio::workloads::{run_write_round, OverlapWorkload};
use atomio_bench::{Backend, BenchConfig};

fn main() {
    let cfg = BenchConfig::default();
    const CLIENTS: usize = 12;
    let workload = OverlapWorkload::new(CLIENTS, 16, 256 * 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..CLIENTS).map(|c| workload.extents_for(c)).collect();

    println!("{CLIENTS} clients, each atomically writing 16 x 256 KiB overlapping regions");
    println!(
        "deployment: {} servers, {} KiB stripes, Grid'5000-like costs\n",
        cfg.servers,
        cfg.chunk_size / 1024
    );
    println!(
        "{:<24} {:>14} {:>12} {:>12}",
        "backend", "MiB/s (sim)", "round time", "atomic?"
    );
    println!("{}", "-".repeat(66));

    let mut versioning = 0.0f64;
    let mut lustre = 0.0f64;
    for backend in Backend::ALL {
        let (driver, _) = cfg.build(backend);
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, backend.atomic_flag(), 1, true);
        let verdict = match (&out.violation, backend.atomic_flag()) {
            (None, true) => "yes".to_owned(),
            (None, false) => "not requested (lucky run)".to_owned(),
            (Some(v), _) => format!("VIOLATED ({})", violation_kind(v)),
        };
        println!(
            "{:<24} {:>14.1} {:>12.3?} {:>12}",
            backend.label(),
            out.throughput_mib_s(),
            out.elapsed,
            verdict
        );
        match backend {
            Backend::Versioning => versioning = out.throughput_mib_s(),
            Backend::LustreLock => lustre = out.throughput_mib_s(),
            _ => {}
        }
    }
    println!(
        "\nversioning vs. lustre-lock: {:.1}x  (paper reports 3.5x-10x across setups)",
        versioning / lustre
    );
}

fn violation_kind(v: &atomio::workloads::Violation) -> &'static str {
    match v {
        atomio::workloads::Violation::TornSegment { .. } => "torn segment",
        atomio::workloads::Violation::DirtyHole { .. } => "dirty hole",
        atomio::workloads::Violation::CyclicOrder { .. } => "cyclic order",
    }
}
