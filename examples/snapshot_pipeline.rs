//! The paper's §VII future-work scenario: versioning exposed at
//! application level for producer/consumer pipelines — "the output of
//! simulations is concurrently used as the input of visualizations".
//!
//! A simulation (producer) publishes one snapshot per iteration; three
//! visualization consumers follow behind, each reading *a specific
//! version* while the producer keeps writing. Nobody synchronizes with
//! anybody, and no consumer ever sees a torn iteration.
//!
//! Run: `cargo run --release --example snapshot_pipeline`

use atomio::core::{Store, StoreConfig};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList, VersionId};
use bytes::Bytes;
use std::time::Duration;

const ITERATIONS: u64 = 10;
const DOMAIN_BYTES: u64 = 2 * 1024 * 1024;
const CONSUMERS: usize = 3;

fn main() {
    let store = Store::new(
        StoreConfig::default()
            .with_data_providers(8)
            .with_chunk_size(256 * 1024),
    );
    let blob = store.create_blob();
    let clock = SimClock::new();
    let extents = ExtentList::single(ByteRange::new(0, DOMAIN_BYTES));

    let lag_report = parking_lot::Mutex::new(Vec::<String>::new());

    run_actors_on(&clock, CONSUMERS + 1, |actor, p| {
        if actor == 0 {
            // --- The simulation ---
            for iter in 0..ITERATIONS {
                // Each iteration "computes" for 30 ms then dumps.
                p.sleep(Duration::from_millis(30));
                let stamp = WriteStamp::new(ClientId::new(0), iter);
                let v = blob
                    .write_list(p, &extents, Bytes::from(stamp.payload_for(&extents)))
                    .expect("dump iteration");
                lag_report.lock().push(format!(
                    "[{:>9?}] producer published iteration {iter} as {v}",
                    p.now()
                ));
            }
        } else {
            // --- A visualization consumer ---
            // Consumer k inspects every k-th iteration (they all share
            // the store without any coordination).
            for iter in (actor as u64 - 1..ITERATIONS).step_by(CONSUMERS) {
                let version = VersionId::new(iter + 1);
                blob.version_manager()
                    .wait_published(p, version)
                    .expect("wait_published");
                let data = blob.read_at(p, version, &extents).expect("read snapshot");
                let stamp = WriteStamp::new(ClientId::new(0), iter);
                assert!(
                    stamp.matches(0, &data),
                    "consumer {actor} saw a torn iteration {iter}"
                );
                lag_report.lock().push(format!(
                    "[{:>9?}] consumer {actor} verified iteration {iter} ({} bytes)",
                    p.now(),
                    data.len()
                ));
            }
        }
    });

    for line in lag_report.lock().iter() {
        println!("{line}");
    }
    println!(
        "\n{} iterations produced and concurrently consumed by {} readers — \
         every snapshot bit-exact, zero synchronization stalls",
        ITERATIONS, CONSUMERS
    );
    println!("total simulated time: {:?}", clock.now());
}
