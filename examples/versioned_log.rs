//! A shared event log built on the versioning store's extensions:
//! the **namespace** (open files by path), **atomic appends** (BlobSeer's
//! APPEND primitive — concurrent appenders get disjoint, back-to-back
//! regions with no coordination), and **cloning** (fork a consistent
//! snapshot of the log for offline analysis while producers keep
//! appending).
//!
//! Run: `cargo run --release --example versioned_log`

use atomio::core::{Store, StoreConfig};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use bytes::Bytes;

const PRODUCERS: usize = 6;
const EVENTS_PER_PRODUCER: usize = 5;

fn main() {
    let store = Store::new(
        StoreConfig::default()
            .with_data_providers(8)
            .with_chunk_size(4096),
    );
    // Files live under paths, like any storage system people adopt.
    let log = store.create_file("/logs/simulation/events.log").unwrap();
    let clock = SimClock::new();

    // === Phase 1: six producers append concurrently. ===
    let offsets = run_actors_on(&clock, PRODUCERS, |i, p| {
        let mut mine = Vec::new();
        for k in 0..EVENTS_PER_PRODUCER {
            let line = format!("producer={i} event={k} | payload {:>4}\n", i * 100 + k);
            let (_, offset) = log.append(p, Bytes::from(line.into_bytes())).unwrap();
            mine.push(offset);
        }
        mine
    });

    // Appends never overlapped: offsets are unique and dense.
    let mut all: Vec<u64> = offsets.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), PRODUCERS * EVENTS_PER_PRODUCER);
    println!(
        "{} events appended concurrently by {PRODUCERS} producers — all offsets disjoint",
        all.len()
    );

    // === Phase 2: fork the log for analysis; producers keep going. ===
    run_actors_on(&clock, 1 + PRODUCERS, |actor, p| {
        if actor == 0 {
            let frozen = store
                .clone_blob(p, &log, log.latest(p).unwrap().version)
                .expect("clone the log snapshot");
            let size = frozen.latest(p).unwrap().size;
            let bytes = frozen.read(p, 0, size).unwrap();
            let text = String::from_utf8(bytes).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), PRODUCERS * EVENTS_PER_PRODUCER);
            println!(
                "analysis fork sees a frozen, complete log of {} lines (first: {:?})",
                lines.len(),
                lines[0]
            );
        } else {
            // Producers append MORE while the analyst reads the fork.
            let i = actor - 1;
            for k in EVENTS_PER_PRODUCER..EVENTS_PER_PRODUCER + 2 {
                let line = format!("producer={i} event={k} | late\n");
                log.append(p, Bytes::from(line.into_bytes())).unwrap();
            }
        }
    });

    run_actors_on(&clock, 1, |_, p| {
        let final_size = log.latest(p).unwrap().size;
        let text = String::from_utf8(log.read(p, 0, final_size).unwrap()).unwrap();
        let total = text.lines().count();
        assert_eq!(total, PRODUCERS * (EVENTS_PER_PRODUCER + 2));
        println!("live log has grown to {total} lines; the analysis fork is unaffected");
    });

    // Namespace niceties.
    store
        .rename("/logs/simulation/events.log", "/logs/archive/run-0042.log")
        .unwrap();
    println!("archived as: {:?}", store.list("/logs/archive"));
    println!("total simulated time: {:?}", clock.now());
}
