//! Offline drop-in subset of `serde`.
//!
//! Instead of serde's visitor architecture, this vendored stand-in uses a
//! simple value tree: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] reads it back. The `derive` feature re-exports the
//! matching proc macros from `serde_derive`, which support exactly the
//! shapes this workspace derives on: named-field structs and one-field
//! tuple newtypes (serialized transparently, like real serde).

use std::fmt;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the subset of JSON's data
/// model this workspace needs).
///
/// Unsigned and signed integers are distinct variants so `u64` values
/// round-trip exactly; floats are separate so integers never lose
/// precision going through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key of an object value, yielding `Null` when the key is
    /// absent (lenient deserialization of older serialized records).
    pub fn get_or_null(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) => "uint",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error (human-readable message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree (produced by [`Serialize`] or a format
    /// front-end like `serde_json`).
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for i64")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.get_or_null("secs"))?;
        let nanos = u32::from_value(v.get_or_null("nanos"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            // Lenient: an absent list field (from an older record)
            // deserializes as empty.
            Value::Null => Ok(Vec::new()),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let d = Duration::new(3, 250);
        assert_eq!(Duration::from_value(&d.to_value()), Ok(d));
    }

    #[test]
    fn uint_max_roundtrips_exactly() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()), Ok(u64::MAX));
    }

    #[test]
    fn option_and_vec() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&5u32.to_value()), Ok(Some(5)));
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Vec::<u64>::from_value(&Value::Null), Ok(vec![]));
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("string"));
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.get("a"), Some(&Value::UInt(1)));
        assert_eq!(obj.get("b"), None);
        assert_eq!(obj.get_or_null("b"), &Value::Null);
    }
}
