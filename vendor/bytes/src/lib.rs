//! Offline drop-in subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable, contiguous byte buffer:
//! an `Arc<[u8]>` plus a sub-range, so `clone` and `slice` are O(1) and
//! never copy payload — the property the simulated data path relies on
//! when fanning one chunk out to several replica providers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice (copied once; the real crate
    /// borrows, but callers only rely on the value semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing the same backing storage (O(1)).
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let s = b.slice(4..8);
        assert_eq!(s.as_ref(), &[4, 5, 6, 7]);
        assert_eq!(s.len(), 4);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..5);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(vec![0, 1, 2, 3, 4]).slice(1..4);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn static_and_str_conversions() {
        assert_eq!(Bytes::from_static(b"abc").as_ref(), b"abc");
        assert_eq!(Bytes::from("abc").as_ref(), b"abc");
        assert!(Bytes::new().is_empty());
    }
}
