//! Offline drop-in subset of `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! value-tree traits. Supported shapes — exactly what this workspace
//! derives on:
//!
//! * named-field structs → serialized as an object keyed by field name;
//! * one-field tuple structs (newtypes) → serialized transparently as the
//!   inner value, matching real serde's newtype behavior.
//!
//! Enums, generics, and `#[serde(...)]` attributes are rejected with a
//! compile-time panic so accidental use fails loudly instead of silently
//! producing the wrong format.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    kind: StructKind,
}

enum StructKind {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields (only 1 is supported).
    Tuple(usize),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.kind {
        StructKind::Named(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        StructKind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        StructKind::Tuple(n) => panic!(
            "derive(Serialize): tuple struct {} has {n} fields; only 1-field newtypes are supported",
            def.name
        ),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        def.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.kind {
        StructKind::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.get_or_null(\"{f}\"))?,")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({} {{ {inits} }})",
                def.name
            )
        }
        StructKind::Tuple(1) => format!(
            "::std::result::Result::Ok({}(::serde::Deserialize::from_value(v)?))",
            def.name
        ),
        StructKind::Tuple(n) => panic!(
            "derive(Deserialize): tuple struct {} has {n} fields; only 1-field newtypes are supported",
            def.name
        ),
    };
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}",
        def.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => panic!("derive: malformed attribute near {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            panic!("derive(Serialize/Deserialize): enums are not supported by the vendored serde_derive")
        }
        other => panic!("derive: expected `struct`, found {other:?}"),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("derive: expected struct name, found {other:?}"),
    };

    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "derive(Serialize/Deserialize): generic struct {name} is not supported by the vendored serde_derive"
        ),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => StructDef {
            name,
            kind: StructKind::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => StructDef {
            name,
            kind: StructKind::Tuple(count_tuple_fields(g.stream())),
        },
        other => panic!("derive: expected struct body for {name}, found {other:?}"),
    }
}

/// Extracts field names from the `{ ... }` body of a named-field struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    'fields: loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field {name}, found {other:?}"),
        }
        fields.push(name);
        // Skip the field type up to the next top-level comma. `<`/`>`
        // depth tracking keeps commas inside generic arguments (e.g.
        // `HashMap<K, V>`) from terminating the field early.
        let mut angle_depth: i64 = 0;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct body `( ... )`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth: i64 = 0;
    let mut pending = false;
    for tok in body {
        saw_tokens = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    count += 1;
                    pending = false;
                }
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    if !saw_tokens {
        0
    } else {
        count
    }
}
