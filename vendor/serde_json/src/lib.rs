//! Offline drop-in subset of `serde_json`: JSON text ⇄ the vendored
//! `serde` value tree.
//!
//! Supports everything the workspace's experiment reports need — objects,
//! arrays, strings with escapes, exact u64/i64 integers, floats (including
//! scientific notation), booleans, and null — and parses the JSON files
//! already committed under `results/` (written by real serde_json).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point on round numbers ("1.0"),
                // matching serde_json's rendering closely enough.
                out.push_str(&format!("{x:?}"));
            } else {
                // Real serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: decode a following \uXXXX.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let low = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("E9".into())),
            ("count".into(), Value::UInt(u64::MAX)),
            ("delta".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(2.5)),
            ("flag".into(), Value::Bool(true)),
            ("missing".into(), Value::Null),
            (
                "rows".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parses_serde_json_style_output() {
        let text = r#"{
  "id": "e7a",
  "rows": [
    { "x": 16, "throughput_mib_s": 123.4, "atomic_ok": null },
    { "x": 32, "throughput_mib_s": 1.0e2, "atomic_ok": true }
  ]
}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("id"), Some(&Value::Str("e7a".into())));
        let Value::Array(rows) = v.get("rows").unwrap() else {
            panic!("rows is an array")
        };
        assert_eq!(rows[0].get("x"), Some(&Value::UInt(16)));
        assert_eq!(rows[1].get("throughput_mib_s"), Some(&Value::Float(100.0)));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1F600}".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        // Incoming \u escapes (incl. surrogate pairs) decode too.
        assert_eq!(
            from_str::<Value>("\"A\\ud83d\\ude00\"").unwrap(),
            Value::Str("A\u{1F600}".into())
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&Value::Float(100.0)).unwrap(), "100.0");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }
}
