//! Offline drop-in subset of `proptest`.
//!
//! A deterministic random-input property-testing harness covering the
//! API surface this workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `Strategy` with `prop_map`/`prop_filter`,
//! integer range strategies, `any::<T>()`, tuple strategies,
//! `collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generating seed and case number so the failure replays exactly
//! (generation is a pure function of the test's name and iteration).

use std::marker::PhantomData;
use std::ops::Range;

/// Why a generated case did not count as a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed — the test must panic.
    Fail(String),
    /// The case was vetoed by `prop_assume!` — draw a fresh one.
    Reject(String),
}

/// Result type the generated test body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator (splitmix64): seeded from the test's name so
/// every run of a given test draws the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Rejection sampling keeps the draw unbiased.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// FNV-1a hash of a test's path — the per-test deterministic seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating locally;
    /// real proptest rejects the whole case, which only affects rejection
    /// accounting, not the accepted distribution's support).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive draws",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy for [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over a type's whole domain (`any::<u64>()`...).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors of `elem`-generated items with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::from_seed($crate::seed_from_name(test_path));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(4096),
                    "proptest {test_path}: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {test_path} failed at case {accepted}: {msg}")
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Vetoes the current case, drawing a fresh one (does not count toward
/// the accepted-case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_seed(crate::seed_from_name("x::t"));
        let mut b = crate::TestRng::from_seed(crate::seed_from_name("x::t"));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = crate::TestRng::from_seed(crate::seed_from_name("x::other"));
        assert_ne!(va[0], c.next_u64(), "different tests draw differently");
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn map_filter_compose(v in (1u64..100).prop_map(|x| x * 2).prop_filter("nonzero", |&x| x != 4)) {
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 4);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_form_compiles(t in (0u64..4, any::<bool>()), j in Just(7u32)) {
            prop_assert!(t.0 < 4);
            prop_assert_eq!(j, 7);
        }
    }
}
