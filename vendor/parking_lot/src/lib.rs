//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace vendors this so it builds with no registry access. Only
//! the surface actually used is provided: `Mutex`, `MutexGuard`, `RwLock`
//! (with read/write guards), `Condvar`, and `into_inner`. Poisoning is
//! transparently ignored, matching parking_lot semantics: a panic while
//! holding a lock does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning semantics.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the calling thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` lets [`Condvar::wait`] temporarily hand the std
/// guard to the std condvar and put the reacquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning semantics.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(sync::TryLockError::Poisoned(p)) => f
                .debug_struct("RwLock")
                .field("data", &&*p.into_inner())
                .finish(),
            Err(sync::TryLockError::WouldBlock) => {
                f.debug_struct("RwLock").field("data", &"<locked>").finish()
            }
        }
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            42
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 42);
    }
}
