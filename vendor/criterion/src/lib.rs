//! Offline drop-in subset of `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! benchmark groups, `BenchmarkId`, and `Bencher::iter`/`iter_with_setup`
//! with adaptive iteration counts. Two modes, matching real criterion's
//! behavior under cargo:
//!
//! * `cargo bench` passes `--bench`: each benchmark is warmed up and then
//!   timed adaptively until the measurement window is filled, printing
//!   mean ns/iter.
//! * `cargo test` (no `--bench` flag): every benchmark body runs exactly
//!   once as a smoke test, with no timing output.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

const MEASURE_WINDOW: Duration = Duration::from_millis(40);
const MAX_ITERS: u64 = 1 << 22;

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes bench targets with `--bench`; cargo test
        // runs them without it (smoke-test mode).
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            test_mode: !bench_mode,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(self.c.test_mode, &full, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        run_one(self.c.test_mode, &full, |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timing loop of one benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// `(iterations, total elapsed)` of the final measured batch.
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count that fills the
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warmup.
        for _ in 0..3 {
            black_box(f());
        }
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_WINDOW || iters >= MAX_ITERS {
                self.measurement = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// Like [`Self::iter`], but `setup` runs outside the timed section
    /// before every invocation of `f`.
    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut f: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        if self.test_mode {
            black_box(f(setup()));
            return;
        }
        for _ in 0..3 {
            black_box(f(setup()));
        }
        let mut iters: u64 = 1;
        loop {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(f(input));
                elapsed += start.elapsed();
            }
            if elapsed >= MEASURE_WINDOW || iters >= MAX_ITERS {
                self.measurement = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, mut f: F) {
    let mut b = Bencher {
        test_mode,
        measurement: None,
    };
    f(&mut b);
    if test_mode {
        return;
    }
    match b.measurement {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "{name:<56} {:>14} ns/iter  ({iters} iters)",
                format_ns(per_iter)
            );
        }
        None => println!("{name:<56} (no measurement recorded)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2}M", ns / 1_000_000.0)
    } else if ns >= 10_000.0 {
        format!("{:.1}k", ns / 1_000.0)
    } else {
        format!("{ns:.0}")
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, invoking each group-runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u64;
        c.bench_function("x", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_with_setup(|| vec![1u64; n as usize], |v| v.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("put", 16).to_string(), "put/16");
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
    }
}
